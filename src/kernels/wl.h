// Weisfeiler-Lehman subtree kernel (WL) feature maps (Shervashidze et al.,
// JMLR 2011; the paper's Eqs. 4-5).
//
// Color refinement compresses each vertex's (own color, sorted neighbor
// colors) signature into a new color via a dictionary that is SHARED across
// all graphs refined by the same WlRefinement instance, so colors (and
// therefore features) are comparable across a dataset. The feature map of a
// graph is the concatenation over iterations h = 0..H of per-color counts
// (Eq. 5); the per-vertex map (Definition 3) contributes one count per
// (iteration, color-of-v) pair — the subtree patterns rooted at v.
#ifndef DEEPMAP_KERNELS_WL_H_
#define DEEPMAP_KERNELS_WL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"
#include "kernels/feature_map.h"

namespace deepmap::kernels {

/// Configuration for WL feature extraction.
struct WlConfig {
  /// Number of refinement iterations H; the paper selects from {0..5}.
  int iterations = 3;
};

/// Stateful WL color refinery with dictionaries shared across graphs.
class WlRefinement {
 public:
  explicit WlRefinement(const WlConfig& config = {});

  int iterations() const { return config_.iterations; }

  /// Refines one graph. Returns colors[h][v] for h = 0..iterations(); row 0
  /// holds the original vertex labels. Dictionaries persist across calls, so
  /// refining graph A then B yields colors comparable between A and B.
  std::vector<std::vector<int64_t>> Refine(const graph::Graph& g);

  /// Number of distinct compressed colors created at iteration h (1-based).
  size_t NumColorsAtIteration(int h) const;

 private:
  WlConfig config_;
  // One signature -> color dictionary per iteration (1-based; iteration 0
  // uses raw labels).
  std::vector<std::map<std::vector<int64_t>, int64_t>> dictionaries_;
};

/// Packs (iteration, color) into a FeatureId.
FeatureId PackWlFeature(int iteration, int64_t color);

/// Per-vertex WL feature maps for one graph using a shared refinery.
std::vector<SparseFeatureMap> VertexWlFeatureMaps(const graph::Graph& g,
                                                  WlRefinement& refinery);

/// Graph-level WL feature map (Eq. 5), equal to the sum of vertex maps.
SparseFeatureMap WlFeatureMap(const graph::Graph& g, WlRefinement& refinery);

/// Convenience: per-vertex WL maps for a whole set of graphs with one shared
/// refinery. result[g][v].
std::vector<std::vector<SparseFeatureMap>> VertexWlFeatureMapsForGraphs(
    const std::vector<graph::Graph>& graphs, const WlConfig& config = {});

}  // namespace deepmap::kernels

#endif  // DEEPMAP_KERNELS_WL_H_
