#include "kernels/feature_map.h"

#include <cmath>

#include "common/check.h"

namespace deepmap::kernels {

void SparseFeatureMap::Add(FeatureId id, double count) {
  if (count == 0.0) return;
  counts_[id] += count;
}

double SparseFeatureMap::Get(FeatureId id) const {
  auto it = counts_.find(id);
  return it == counts_.end() ? 0.0 : it->second;
}

SparseFeatureMap& SparseFeatureMap::operator+=(const SparseFeatureMap& other) {
  for (const auto& [id, count] : other.counts_) counts_[id] += count;
  return *this;
}

double SparseFeatureMap::Dot(const SparseFeatureMap& other) const {
  // Walk the smaller map, probe the larger.
  const SparseFeatureMap* small = this;
  const SparseFeatureMap* large = &other;
  if (small->counts_.size() > large->counts_.size()) std::swap(small, large);
  double dot = 0.0;
  for (const auto& [id, count] : small->counts_) {
    auto it = large->counts_.find(id);
    if (it != large->counts_.end()) dot += count * it->second;
  }
  return dot;
}

double SparseFeatureMap::L2Norm() const { return std::sqrt(Dot(*this)); }

double SparseFeatureMap::TotalCount() const {
  double total = 0.0;
  for (const auto& [id, count] : counts_) total += count;
  return total;
}

SparseFeatureMap SumFeatureMaps(const std::vector<SparseFeatureMap>& maps) {
  SparseFeatureMap sum;
  for (const SparseFeatureMap& m : maps) sum += m;
  return sum;
}

void Vocabulary::AddAll(const SparseFeatureMap& map) {
  for (const auto& [id, count] : map.entries()) {
    columns_.try_emplace(id, static_cast<int64_t>(columns_.size()));
  }
}

int64_t Vocabulary::ColumnOf(FeatureId id) const {
  auto it = columns_.find(id);
  return it == columns_.end() ? -1 : it->second;
}

std::vector<double> Vocabulary::Densify(const SparseFeatureMap& map) const {
  std::vector<double> dense(columns_.size(), 0.0);
  for (const auto& [id, count] : map.entries()) {
    int64_t column = ColumnOf(id);
    if (column >= 0) dense[static_cast<size_t>(column)] += count;
  }
  return dense;
}

std::vector<double> DensifyHashed(const SparseFeatureMap& map, size_t dim) {
  DEEPMAP_CHECK_GT(dim, 0u);
  std::vector<double> dense(dim, 0.0);
  for (const auto& [id, count] : map.entries()) {
    // Multiplicative mixing before the modulo so that ids that share low
    // bits (packed triplets) spread across columns.
    uint64_t mixed = id * 0x9E3779B97F4A7C15ull;
    dense[mixed % dim] += count;
  }
  return dense;
}

}  // namespace deepmap::kernels
