// C-SVM on precomputed kernel matrices, trained with SMO (the paper uses
// LIBSVM's C-SVC; this is a from-scratch equivalent). Binary classification
// via SMO; multiclass via one-vs-rest on decision values.
#ifndef DEEPMAP_BASELINES_SVM_H_
#define DEEPMAP_BASELINES_SVM_H_

#include <cstdint>
#include <vector>

#include "kernels/kernel_matrix.h"

namespace deepmap::baselines {

/// SVM hyperparameters.
struct SvmConfig {
  /// Soft-margin penalty; the paper tunes over {1, 10, 100, 1000}.
  double c = 1.0;
  /// KKT violation tolerance.
  double tolerance = 1e-3;
  /// SMO terminates after this many passes without an alpha update.
  int max_passes = 5;
  /// Hard cap on SMO iterations.
  int max_iterations = 10000;
  uint64_t seed = 42;
};

/// Binary soft-margin SVM over a precomputed kernel.
class BinarySmoSvm {
 public:
  /// Trains on rows/columns `train_indices` of the full Gram matrix.
  /// `binary_labels[i]` must be +1 or -1 for each train index i (indexed
  /// into the full dataset).
  void Train(const kernels::Matrix& gram,
             const std::vector<int>& train_indices,
             const std::vector<int>& binary_labels, const SvmConfig& config);

  /// Decision value f(x) = sum_i alpha_i y_i K(i, sample) + b for any
  /// column `sample_index` of the same Gram matrix.
  double DecisionValue(const kernels::Matrix& gram, int sample_index) const;

  /// Number of support vectors (alpha > 0).
  int NumSupportVectors() const;

 private:
  std::vector<int> train_indices_;
  std::vector<double> alpha_;
  std::vector<int> y_;  // +-1 per train index
  double b_ = 0.0;
};

/// One-vs-rest multiclass wrapper.
class KernelSvm {
 public:
  /// Trains C one-vs-rest machines. `labels` are 0-based classes for the
  /// FULL dataset; only `train_indices` participate in training.
  void Train(const kernels::Matrix& gram, const std::vector<int>& labels,
             const std::vector<int>& train_indices, const SvmConfig& config);

  /// Argmax over per-class decision values.
  int Predict(const kernels::Matrix& gram, int sample_index) const;

  /// Accuracy over `test_indices` (labels are full-dataset labels).
  double Evaluate(const kernels::Matrix& gram, const std::vector<int>& labels,
                  const std::vector<int>& test_indices) const;

  int num_classes() const { return static_cast<int>(machines_.size()); }

 private:
  std::vector<BinarySmoSvm> machines_;
};

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_SVM_H_
