// DGCNN baseline (Zhang et al., AAAI 2018): stacked graph convolutions with
// row-normalized propagation and tanh, channel concatenation across layers,
// SortPooling to a fixed number of vertices, then a 1-D conv + dense head.
#ifndef DEEPMAP_BASELINES_DGCNN_H_
#define DEEPMAP_BASELINES_DGCNN_H_

#include <memory>
#include <vector>

#include "baselines/gnn_common.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/model.h"
#include "nn/pooling.h"

namespace deepmap::baselines {

/// DGCNN hyperparameters (defaults follow the original paper scaled to this
/// benchmark's sizes).
struct DgcnnConfig {
  std::vector<int> conv_channels{32, 32, 32, 1};
  /// SortPooling keeps this many vertices.
  int sortpool_k = 10;
  int conv1d_channels = 16;
  int dense_units = 128;
  double dropout_rate = 0.5;
  uint64_t seed = 42;
};

/// One training sample: vertex features plus the propagation operator.
struct DgcnnSample {
  nn::Tensor features;  // [n, m]
  nn::GraphOp op;       // row-normalized (A + I)
};

/// Builds DGCNN samples for every graph.
std::vector<DgcnnSample> BuildDgcnnSamples(
    const graph::GraphDataset& dataset, const VertexFeatureProvider& provider);

/// The DGCNN network; Model concept with Sample = DgcnnSample.
class DgcnnModel {
 public:
  DgcnnModel(int feature_dim, int num_classes, const DgcnnConfig& config);

  nn::Tensor Forward(const DgcnnSample& sample, bool training);
  void Backward(const nn::Tensor& grad_logits);
  std::vector<nn::Param> Params();

 private:
  Rng rng_;
  DgcnnConfig config_;
  std::vector<std::unique_ptr<GraphConvLayer>> convs_;
  int concat_dim_;
  nn::SortPooling sortpool_;
  nn::Sequential head_;  // Conv1D + ReLU + Flatten + Dense + Dropout + Dense
  // Caches for the concat split in Backward.
  std::vector<int> layer_dims_;
  int cached_n_ = 0;
};

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_DGCNN_H_
