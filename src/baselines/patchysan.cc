#include "baselines/patchysan.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/receptive_field.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"

namespace deepmap::baselines {

nn::Tensor BuildPatchySanInput(const graph::GraphDataset& dataset,
                               const VertexFeatureProvider& provider,
                               int graph_index,
                               const PatchySanConfig& config) {
  const graph::Graph& g = dataset.graph(graph_index);
  const int w = config.sequence_length;
  const int k = config.field_size;
  nn::Tensor input({w * k, provider.dim});
  const std::vector<double> centrality =
      core::ComputeCentrality(g, core::AlignmentMeasure::kEigenvector,
                              nullptr);
  const std::vector<graph::Vertex> order =
      graph::SortByCentralityDescending(centrality);
  const int selected = std::min<int>(w, g.NumVertices());
  for (int slot = 0; slot < selected; ++slot) {
    const std::vector<graph::Vertex> field =
        core::BuildReceptiveField(g, order[slot], k, centrality);
    for (int pos = 0; pos < k; ++pos) {
      const graph::Vertex u = field[pos];
      if (u == core::kDummyVertex) continue;
      std::vector<double> row = provider.row(graph_index, u);
      float* dst =
          input.data() + (static_cast<size_t>(slot) * k + pos) * provider.dim;
      for (int c = 0; c < provider.dim; ++c) dst[c] = static_cast<float>(row[c]);
    }
  }
  return input;
}

std::vector<nn::Tensor> BuildPatchySanInputs(
    const graph::GraphDataset& dataset, const VertexFeatureProvider& provider,
    const PatchySanConfig& config) {
  std::vector<nn::Tensor> inputs;
  inputs.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    inputs.push_back(BuildPatchySanInput(dataset, provider, g, config));
  }
  return inputs;
}

PatchySanModel::PatchySanModel(int feature_dim, int num_classes,
                               const PatchySanConfig& config)
    : rng_(config.seed) {
  const int k = config.field_size;
  net_.Emplace<nn::Conv1D>(feature_dim, config.conv_channels, k, k, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Conv1D>(config.conv_channels, config.conv2_channels, 1, 1,
                           rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Flatten>()
      .Emplace<nn::Dense>(config.conv2_channels * config.sequence_length,
                          config.dense_units, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Dropout>(config.dropout_rate, rng_)
      .Emplace<nn::Dense>(config.dense_units, num_classes, rng_);
}

nn::Tensor PatchySanModel::Forward(const nn::Tensor& input, bool training) {
  return net_.Forward(input, training);
}

void PatchySanModel::Backward(const nn::Tensor& grad_logits) {
  net_.Backward(grad_logits);
}

std::vector<nn::Param> PatchySanModel::Params() { return net_.Params(); }

int DefaultPatchySanSequenceLength(const graph::GraphDataset& dataset) {
  double total = 0;
  for (const graph::Graph& g : dataset.graphs()) total += g.NumVertices();
  return std::max(2, static_cast<int>(std::lround(total / dataset.size())));
}

}  // namespace deepmap::baselines
