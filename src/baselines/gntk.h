// Graph Neural Tangent Kernel (Du et al., NeurIPS 2019).
//
// GNTK is the exact kernel of an infinitely wide GNN trained by gradient
// descent. For every pair of graphs it evolves two matrices over the vertex
// pairs (u, v): the GP covariance Sigma and the tangent kernel Theta.
// Each GNN block performs
//   (1) neighborhood aggregation: Sigma <- c_u c_v * sum over N(u)+u x
//       N(v)+v of Sigma (and the same for Theta), c_u = 1/(deg(u)+1);
//   (2) R infinite-width ReLU MLP layers via the arc-cosine closed forms:
//       Sigma' = sqrt(p q)/(2 pi) (sin t + (pi - t) cos t),
//       dSigma = (pi - t)/(2 pi),  Theta <- Theta * dSigma + Sigma',
//       where cos t = Sigma/sqrt(p q), p/q the self-covariances.
// The graph kernel is the sum of the final Theta over all vertex pairs.
#ifndef DEEPMAP_BASELINES_GNTK_H_
#define DEEPMAP_BASELINES_GNTK_H_

#include "graph/dataset.h"
#include "graph/graph.h"
#include "kernels/kernel_matrix.h"

namespace deepmap::baselines {

/// GNTK hyperparameters.
struct GntkConfig {
  /// Number of GNN blocks (aggregation + MLP).
  int num_blocks = 2;
  /// Infinite-width MLP layers per block.
  int mlp_layers = 2;
};

/// GNTK value for one pair of graphs with one-hot label inputs
/// (label_count = size of the shared label alphabet).
double GntkPairKernel(const graph::Graph& g1, const graph::Graph& g2,
                      const GntkConfig& config);

/// Full GNTK kernel matrix over the dataset (cosine-normalized).
kernels::Matrix GntkKernelMatrix(const graph::GraphDataset& dataset,
                                 const GntkConfig& config = {});

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_GNTK_H_
