// Deep Graph Kernels (Yanardag & Vishwanathan, KDD 2015).
//
// DGK replaces the R-convolution kernel K = Phi Phi^T with K = Phi M Phi^T,
// where M encodes similarity between substructures learned from their
// co-occurrence statistics. The original work trains word2vec over
// substructure "sentences"; this implementation uses the standard
// closed-form equivalent: a PPMI co-occurrence matrix factorized by
// truncated eigendecomposition (subspace iteration), giving substructure
// embeddings E with M = E E^T.
#ifndef DEEPMAP_BASELINES_DGK_H_
#define DEEPMAP_BASELINES_DGK_H_

#include <cstdint>
#include <vector>

#include "graph/dataset.h"
#include "kernels/kernel_matrix.h"
#include "kernels/vertex_feature_map.h"

namespace deepmap::baselines {

/// DGK hyperparameters.
struct DgkConfig {
  /// Substructure family the feature maps come from.
  kernels::VertexFeatureConfig features;
  /// Embedding dimensionality for the substructure vectors.
  int embedding_dim = 16;
  /// Cap on the substructure vocabulary (most frequent kept); <= 0 = all.
  int max_vocabulary = 512;
  /// Subspace-iteration rounds for the truncated eigendecomposition.
  int power_iterations = 30;
  uint64_t seed = 42;
};

/// Computes the DGK kernel matrix over the dataset (cosine-normalized).
kernels::Matrix DgkKernelMatrix(const graph::GraphDataset& dataset,
                                const DgkConfig& config);

/// Positive PMI matrix of substructure co-occurrence (substructures
/// co-occur when they appear in the same graph). Exposed for tests.
std::vector<std::vector<double>> PpmiMatrix(
    const std::vector<std::vector<double>>& counts);

/// Top-`dim` eigen-embedding of a symmetric PSD-truncated matrix via
/// orthogonal subspace iteration: rows are embeddings, E E^T ~ M. Exposed
/// for tests.
std::vector<std::vector<double>> TruncatedEigenEmbedding(
    const std::vector<std::vector<double>>& sym, int dim, int iterations,
    uint64_t seed);

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_DGK_H_
