#include "baselines/gntk.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/check.h"

namespace deepmap::baselines {
namespace {

using graph::Graph;

// Dense n1 x n2 matrix as nested vectors.
using Mat = std::vector<std::vector<double>>;

Mat Zeros(int rows, int cols) {
  return Mat(static_cast<size_t>(rows), std::vector<double>(cols, 0.0));
}

// Aggregation T[u][v] = c_u c_v sum_{u' in N(u)+u} sum_{v' in N(v)+v}
// M[u'][v'], computed as two one-sided passes.
Mat Aggregate(const Graph& g1, const Graph& g2, const Mat& m) {
  const int n1 = g1.NumVertices();
  const int n2 = g2.NumVertices();
  // Left pass: rows. tmp[u][v'] = c_u * sum_{u' in N(u)+u} m[u'][v'].
  Mat tmp = Zeros(n1, n2);
  for (int u = 0; u < n1; ++u) {
    const double cu = 1.0 / (g1.Degree(u) + 1);
    for (int v = 0; v < n2; ++v) tmp[u][v] = m[u][v];
    for (graph::Vertex w : g1.Neighbors(u)) {
      for (int v = 0; v < n2; ++v) tmp[u][v] += m[w][v];
    }
    for (int v = 0; v < n2; ++v) tmp[u][v] *= cu;
  }
  // Right pass: columns.
  Mat out = Zeros(n1, n2);
  for (int v = 0; v < n2; ++v) {
    const double cv = 1.0 / (g2.Degree(v) + 1);
    for (int u = 0; u < n1; ++u) out[u][v] = tmp[u][v];
    for (graph::Vertex w : g2.Neighbors(v)) {
      for (int u = 0; u < n1; ++u) out[u][v] += tmp[u][w];
    }
    for (int u = 0; u < n1; ++u) out[u][v] *= cv;
  }
  return out;
}

// State of the pair computation.
struct PairState {
  Mat sigma;
  Mat theta;
};

// Initial covariance: one-hot label inner products.
Mat InitialSigma(const Graph& g1, const Graph& g2) {
  Mat s = Zeros(g1.NumVertices(), g2.NumVertices());
  for (int u = 0; u < g1.NumVertices(); ++u) {
    for (int v = 0; v < g2.NumVertices(); ++v) {
      s[u][v] = g1.GetLabel(u) == g2.GetLabel(v) ? 1.0 : 0.0;
    }
  }
  return s;
}

// One arc-cosine MLP layer applied to the cross state given the diagonal
// self-covariances of both graphs.
void MlpLayer(PairState& cross, const std::vector<double>& diag1,
              const std::vector<double>& diag2) {
  constexpr double kPi = std::numbers::pi;
  const int n1 = static_cast<int>(cross.sigma.size());
  const int n2 = n1 > 0 ? static_cast<int>(cross.sigma[0].size()) : 0;
  for (int u = 0; u < n1; ++u) {
    for (int v = 0; v < n2; ++v) {
      const double p = std::max(diag1[u], 1e-12);
      const double q = std::max(diag2[v], 1e-12);
      const double denom = std::sqrt(p * q);
      double cos_t = std::clamp(cross.sigma[u][v] / denom, -1.0, 1.0);
      double t = std::acos(cos_t);
      double new_sigma =
          denom / (2.0 * kPi) * (std::sin(t) + (kPi - t) * cos_t);
      double sigma_dot = (kPi - t) / (2.0 * kPi);
      cross.theta[u][v] = cross.theta[u][v] * sigma_dot + new_sigma;
      cross.sigma[u][v] = new_sigma;
    }
  }
}

// Extracts the diagonal of a square pair state.
std::vector<double> Diagonal(const Mat& m) {
  std::vector<double> d(m.size());
  for (size_t i = 0; i < m.size(); ++i) d[i] = m[i][i];
  return d;
}

}  // namespace

double GntkPairKernel(const Graph& g1, const Graph& g2,
                      const GntkConfig& config) {
  DEEPMAP_CHECK_GT(config.num_blocks, 0);
  DEEPMAP_CHECK_GT(config.mlp_layers, 0);
  if (g1.NumVertices() == 0 || g2.NumVertices() == 0) return 0.0;
  // Evolve the (1,1), (2,2) and (1,2) states in lockstep; the self states
  // supply the diagonals the arc-cosine formulas need.
  PairState s11{InitialSigma(g1, g1), InitialSigma(g1, g1)};
  PairState s22{InitialSigma(g2, g2), InitialSigma(g2, g2)};
  PairState s12{InitialSigma(g1, g2), InitialSigma(g1, g2)};
  for (int block = 0; block < config.num_blocks; ++block) {
    s11.sigma = Aggregate(g1, g1, s11.sigma);
    s11.theta = Aggregate(g1, g1, s11.theta);
    s22.sigma = Aggregate(g2, g2, s22.sigma);
    s22.theta = Aggregate(g2, g2, s22.theta);
    s12.sigma = Aggregate(g1, g2, s12.sigma);
    s12.theta = Aggregate(g1, g2, s12.theta);
    for (int layer = 0; layer < config.mlp_layers; ++layer) {
      const std::vector<double> d1 = Diagonal(s11.sigma);
      const std::vector<double> d2 = Diagonal(s22.sigma);
      MlpLayer(s12, d1, d2);
      MlpLayer(s11, d1, d1);
      MlpLayer(s22, d2, d2);
    }
  }
  double total = 0.0;
  for (const auto& row : s12.theta) {
    for (double value : row) total += value;
  }
  return total;
}

kernels::Matrix GntkKernelMatrix(const graph::GraphDataset& dataset,
                                 const GntkConfig& config) {
  const int n = dataset.size();
  kernels::Matrix k(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double value = GntkPairKernel(dataset.graph(i), dataset.graph(j),
                                    config);
      k[i][j] = value;
      k[j][i] = value;
    }
  }
  kernels::NormalizeKernelMatrix(k);
  return k;
}

}  // namespace deepmap::baselines
