#include "baselines/gcn.h"

#include "common/check.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"

namespace deepmap::baselines {

std::vector<GcnSample> BuildGcnSamples(const graph::GraphDataset& dataset,
                                       const VertexFeatureProvider& provider) {
  std::vector<GcnSample> samples;
  samples.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    samples.push_back(GcnSample{VertexFeatureTensor(dataset, provider, g),
                                nn::GraphOp::GcnNorm(dataset.graph(g))});
  }
  return samples;
}

GcnModel::GcnModel(int feature_dim, int num_classes, const GcnConfig& config)
    : rng_(config.seed), config_(config) {
  DEEPMAP_CHECK_GT(config.num_layers, 0);
  int in = feature_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    convs_.push_back(std::make_unique<GraphConvLayer>(
        in, config.hidden_units, GraphConvLayer::Activation::kRelu, rng_));
    in = config.hidden_units;
  }
  head_.Emplace<nn::Dense>(config.hidden_units, config.hidden_units, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Dropout>(config.dropout_rate, rng_)
      .Emplace<nn::Dense>(config.hidden_units, num_classes, rng_);
}

nn::Tensor GcnModel::Forward(const GcnSample& sample, bool training) {
  nn::Tensor h = sample.features;
  for (auto& conv : convs_) h = conv->Forward(sample.op, h);
  nn::Tensor pooled = readout_.Forward(h, training);
  return head_.Forward(pooled, training);
}

void GcnModel::Backward(const nn::Tensor& grad_logits) {
  nn::Tensor g = head_.Backward(grad_logits);
  g = readout_.Backward(g);
  for (auto it = convs_.rbegin(); it != convs_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
}

std::vector<nn::Param> GcnModel::Params() {
  std::vector<nn::Param> params;
  for (auto& conv : convs_) conv->CollectParams(&params);
  std::vector<nn::Param> head_params = head_.Params();
  params.insert(params.end(), head_params.begin(), head_params.end());
  return params;
}

}  // namespace deepmap::baselines
