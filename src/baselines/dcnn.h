// DCNN baseline (Atwood & Towsley, NeurIPS 2016): diffusion-convolutional
// neural network. Vertex features are diffused over hop-powers of the
// random-walk transition matrix; per-hop elementwise weights + nonlinearity
// produce the diffusion representation, mean-pooled for graph
// classification.
#ifndef DEEPMAP_BASELINES_DCNN_H_
#define DEEPMAP_BASELINES_DCNN_H_

#include <vector>

#include "baselines/gnn_common.h"
#include "nn/dense.h"
#include "nn/model.h"

namespace deepmap::baselines {

/// DCNN hyperparameters.
struct DcnnConfig {
  /// Number of diffusion hops H (powers P^0..P^H).
  int num_hops = 3;
  int dense_units = 64;
  double dropout_rate = 0.5;
  uint64_t seed = 42;
};

/// One training sample: the mean-pooled diffused features
/// D[h][c] = (1/n) sum_v (P^h X)[v][c], shape [(H+1), m].
struct DcnnSample {
  nn::Tensor diffused;  // [(H+1), m]
};

/// Builds DCNN samples (precomputes transition powers per graph).
std::vector<DcnnSample> BuildDcnnSamples(const graph::GraphDataset& dataset,
                                         const VertexFeatureProvider& provider,
                                         int num_hops);

/// The DCNN network; Model concept with Sample = DcnnSample.
/// Z = ReLU(W (.) D) with elementwise weights W of shape [(H+1), m],
/// followed by a dense classifier on the flattened Z.
class DcnnModel {
 public:
  DcnnModel(int feature_dim, int num_hops, int num_classes,
            const DcnnConfig& config);

  nn::Tensor Forward(const DcnnSample& sample, bool training);
  void Backward(const nn::Tensor& grad_logits);
  std::vector<nn::Param> Params();

 private:
  Rng rng_;
  int feature_dim_;
  int num_hops_;
  nn::Tensor hop_weights_;  // [(H+1), m]
  nn::Tensor hop_weights_grad_;
  nn::Tensor cached_diffused_;
  nn::Tensor cached_pre_;  // W (.) D before ReLU
  nn::Sequential head_;    // Flatten happens via reshape; Dense layers here
};

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_DCNN_H_
