// GCN graph-classification baseline (Kipf & Welling, ICLR 2017 — the
// paper's reference [27], discussed in its Section 2.2).
//
// Layer-wise propagation rule H' = ReLU(D^-1/2 (A+I) D^-1/2 H W) with a
// mean-pool readout and dense head. GCN was designed for vertex
// classification; this graph-level adaptation (mean readout) is the
// standard way it appears in graph-classification comparisons.
#ifndef DEEPMAP_BASELINES_GCN_H_
#define DEEPMAP_BASELINES_GCN_H_

#include <memory>
#include <vector>

#include "baselines/gnn_common.h"
#include "nn/model.h"
#include "nn/pooling.h"

namespace deepmap::baselines {

/// GCN hyperparameters.
struct GcnConfig {
  int num_layers = 2;
  int hidden_units = 32;
  double dropout_rate = 0.5;
  uint64_t seed = 42;
};

/// One training sample: vertex features plus the symmetric-normalized op.
struct GcnSample {
  nn::Tensor features;  // [n, m]
  nn::GraphOp op;       // D^-1/2 (A + I) D^-1/2
};

/// Builds GCN samples for every graph.
std::vector<GcnSample> BuildGcnSamples(const graph::GraphDataset& dataset,
                                       const VertexFeatureProvider& provider);

/// The GCN network; Model concept with Sample = GcnSample.
class GcnModel {
 public:
  GcnModel(int feature_dim, int num_classes, const GcnConfig& config);

  nn::Tensor Forward(const GcnSample& sample, bool training);
  void Backward(const nn::Tensor& grad_logits);
  std::vector<nn::Param> Params();

 private:
  Rng rng_;
  GcnConfig config_;
  std::vector<std::unique_ptr<GraphConvLayer>> convs_;
  nn::MeanPool readout_;
  nn::Sequential head_;
};

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_GCN_H_
