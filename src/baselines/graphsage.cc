#include "baselines/graphsage.h"

#include "common/check.h"
#include "nn/dense.h"
#include "nn/dropout.h"

namespace deepmap::baselines {

std::vector<GraphSageSample> BuildGraphSageSamples(
    const graph::GraphDataset& dataset,
    const VertexFeatureProvider& provider) {
  std::vector<GraphSageSample> samples;
  samples.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    samples.push_back(
        GraphSageSample{VertexFeatureTensor(dataset, provider, g),
                        nn::GraphOp::Transition(dataset.graph(g))});
  }
  return samples;
}

GraphSageLayer::GraphSageLayer(int in_features, int out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      w_self_({in_features, out_features}),
      w_neigh_({in_features, out_features}),
      w_self_grad_({in_features, out_features}),
      w_neigh_grad_({in_features, out_features}) {
  nn::GlorotInit(w_self_, in_features, out_features, rng);
  nn::GlorotInit(w_neigh_, in_features, out_features, rng);
}

nn::Tensor GraphSageLayer::Forward(const nn::GraphOp& mean_op,
                                   const nn::Tensor& x) {
  DEEPMAP_CHECK_EQ(x.rank(), 2);
  DEEPMAP_CHECK_EQ(x.dim(1), in_features_);
  cached_op_ = &mean_op;
  cached_x_ = x;
  cached_mean_ = mean_op.Apply(x);
  nn::Tensor pre = nn::MatMul(x, w_self_);
  pre.Add(nn::MatMul(cached_mean_, w_neigh_));
  cached_pre_ = pre;
  for (int i = 0; i < pre.NumElements(); ++i) {
    if (pre.data()[i] < 0.0f) pre.data()[i] = 0.0f;
  }
  return norm_.Forward(pre, /*training=*/false);
}

nn::Tensor GraphSageLayer::Backward(const nn::Tensor& grad_output) {
  DEEPMAP_CHECK(cached_op_ != nullptr);
  nn::Tensor grad = norm_.Backward(grad_output);
  for (int i = 0; i < grad.NumElements(); ++i) {
    if (cached_pre_.data()[i] <= 0.0f) grad.data()[i] = 0.0f;  // ReLU
  }
  w_self_grad_.Add(nn::MatMulTransposedA(cached_x_, grad));
  w_neigh_grad_.Add(nn::MatMulTransposedA(cached_mean_, grad));
  nn::Tensor grad_x = nn::MatMulTransposedB(grad, w_self_);
  nn::Tensor grad_mean = nn::MatMulTransposedB(grad, w_neigh_);
  grad_x.Add(cached_op_->ApplyTranspose(grad_mean));
  return grad_x;
}

void GraphSageLayer::CollectParams(std::vector<nn::Param>* params) {
  params->push_back({&w_self_, &w_self_grad_});
  params->push_back({&w_neigh_, &w_neigh_grad_});
}

GraphSageModel::GraphSageModel(int feature_dim, int num_classes,
                               const GraphSageConfig& config)
    : rng_(config.seed) {
  DEEPMAP_CHECK_GT(config.num_layers, 0);
  int in = feature_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    layers_.push_back(
        std::make_unique<GraphSageLayer>(in, config.hidden_units, rng_));
    in = config.hidden_units;
  }
  head_.Emplace<nn::Dense>(config.hidden_units, config.hidden_units, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Dropout>(config.dropout_rate, rng_)
      .Emplace<nn::Dense>(config.hidden_units, num_classes, rng_);
}

nn::Tensor GraphSageModel::Forward(const GraphSageSample& sample,
                                   bool training) {
  nn::Tensor h = sample.features;
  for (auto& layer : layers_) h = layer->Forward(sample.mean_op, h);
  nn::Tensor pooled = readout_.Forward(h, training);
  return head_.Forward(pooled, training);
}

void GraphSageModel::Backward(const nn::Tensor& grad_logits) {
  nn::Tensor g = head_.Backward(grad_logits);
  g = readout_.Backward(g);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
}

std::vector<nn::Param> GraphSageModel::Params() {
  std::vector<nn::Param> params;
  for (auto& layer : layers_) layer->CollectParams(&params);
  std::vector<nn::Param> head_params = head_.Params();
  params.insert(params.end(), head_params.begin(), head_params.end());
  return params;
}

}  // namespace deepmap::baselines
