#include "baselines/gnn_common.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace deepmap::baselines {

VertexFeatureProvider OneHotProvider(const graph::GraphDataset& dataset) {
  // One column per distinct label value that occurs in the dataset.
  const int dim = std::max(1, dataset.NumVertexLabels());
  // Labels are compacted in generated datasets, but guard against sparse
  // alphabets by mapping via label value order.
  std::vector<graph::Label> labels;
  for (const graph::Graph& g : dataset.graphs()) {
    for (graph::Label l : g.Labels()) labels.push_back(l);
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  // Capture by value: providers may outlive local scope.
  const graph::GraphDataset* ds = &dataset;
  VertexFeatureProvider provider;
  provider.dim = dim;
  provider.row = [ds, labels, dim](int g, int v) {
    std::vector<double> row(dim, 0.0);
    graph::Label l = ds->graph(g).GetLabel(v);
    auto it = std::lower_bound(labels.begin(), labels.end(), l);
    if (it != labels.end() && *it == l) {
      row[static_cast<size_t>(it - labels.begin())] = 1.0;
    }
    return row;
  };
  return provider;
}

VertexFeatureProvider FeatureMapProvider(
    const kernels::DatasetVertexFeatures& features) {
  VertexFeatureProvider provider;
  provider.dim = features.dim();
  const kernels::DatasetVertexFeatures* f = &features;
  provider.row = [f](int g, int v) { return f->DenseRow(g, v); };
  return provider;
}

nn::Tensor VertexFeatureTensor(const graph::GraphDataset& dataset,
                               const VertexFeatureProvider& provider,
                               int graph_index) {
  const graph::Graph& g = dataset.graph(graph_index);
  const int n = std::max(1, g.NumVertices());
  nn::Tensor features({n, provider.dim});
  for (graph::Vertex v = 0; v < g.NumVertices(); ++v) {
    std::vector<double> row = provider.row(graph_index, v);
    DEEPMAP_CHECK_EQ(row.size(), static_cast<size_t>(provider.dim));
    for (int c = 0; c < provider.dim; ++c) {
      features.at(v, c) = static_cast<float>(row[c]);
    }
  }
  return features;
}

std::vector<nn::Tensor> BuildVertexFeatureTensors(
    const graph::GraphDataset& dataset,
    const VertexFeatureProvider& provider) {
  std::vector<nn::Tensor> tensors;
  tensors.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    tensors.push_back(VertexFeatureTensor(dataset, provider, g));
  }
  return tensors;
}

GraphConvLayer::GraphConvLayer(int in_features, int out_features,
                               Activation activation, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      activation_(activation),
      weights_({in_features, out_features}),
      weights_grad_({in_features, out_features}) {
  nn::GlorotInit(weights_, in_features, out_features, rng);
}

nn::Tensor GraphConvLayer::Forward(const nn::GraphOp& op,
                                   const nn::Tensor& x) {
  DEEPMAP_CHECK_EQ(x.rank(), 2);
  DEEPMAP_CHECK_EQ(x.dim(1), in_features_);
  cached_op_ = &op;
  cached_h_ = op.Apply(x);
  cached_pre_ = nn::MatMul(cached_h_, weights_);
  nn::Tensor out = cached_pre_;
  switch (activation_) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      for (int i = 0; i < out.NumElements(); ++i) {
        if (out.data()[i] < 0.0f) out.data()[i] = 0.0f;
      }
      break;
    case Activation::kTanh:
      for (int i = 0; i < out.NumElements(); ++i) {
        out.data()[i] = std::tanh(out.data()[i]);
      }
      break;
  }
  return out;
}

nn::Tensor GraphConvLayer::Backward(const nn::Tensor& grad_output) {
  DEEPMAP_CHECK(cached_op_ != nullptr);
  nn::Tensor grad_pre = grad_output;
  switch (activation_) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      for (int i = 0; i < grad_pre.NumElements(); ++i) {
        if (cached_pre_.data()[i] <= 0.0f) grad_pre.data()[i] = 0.0f;
      }
      break;
    case Activation::kTanh:
      for (int i = 0; i < grad_pre.NumElements(); ++i) {
        float y = std::tanh(cached_pre_.data()[i]);
        grad_pre.data()[i] *= (1.0f - y * y);
      }
      break;
  }
  // dW = H^T dZ;  dH = dZ W^T;  dX = S^T dH.
  weights_grad_.Add(nn::MatMulTransposedA(cached_h_, grad_pre));
  nn::Tensor grad_h = nn::MatMulTransposedB(grad_pre, weights_);
  return cached_op_->ApplyTranspose(grad_h);
}

void GraphConvLayer::CollectParams(std::vector<nn::Param>* params) {
  params->push_back({&weights_, &weights_grad_});
}

}  // namespace deepmap::baselines
