#include "baselines/kernel_svm.h"

#include "common/check.h"

namespace deepmap::baselines {
namespace {

// Mean inner-CV accuracy of one C candidate on the training split.
double InnerCvAccuracy(const kernels::Matrix& gram,
                       const std::vector<int>& labels,
                       const std::vector<int>& train_indices, double c,
                       const KernelSvmConfig& config) {
  // Build inner folds over positions within train_indices.
  std::vector<int> inner_labels;
  inner_labels.reserve(train_indices.size());
  for (int i : train_indices) inner_labels.push_back(labels[i]);
  const auto splits = eval::StratifiedKFold(inner_labels, config.inner_folds,
                                            config.svm.seed + 77);
  double total = 0.0;
  for (const auto& split : splits) {
    std::vector<int> inner_train, inner_test;
    inner_train.reserve(split.train_indices.size());
    for (int p : split.train_indices) inner_train.push_back(train_indices[p]);
    for (int p : split.test_indices) inner_test.push_back(train_indices[p]);
    SvmConfig svm_config = config.svm;
    svm_config.c = c;
    KernelSvm svm;
    svm.Train(gram, labels, inner_train, svm_config);
    total += svm.Evaluate(gram, labels, inner_test);
  }
  return total / splits.size();
}

}  // namespace

double RunKernelSvmFold(const kernels::Matrix& gram,
                        const std::vector<int>& labels,
                        const eval::FoldSplit& split,
                        const KernelSvmConfig& config) {
  DEEPMAP_CHECK(!config.c_candidates.empty());
  double best_c = config.c_candidates.front();
  if (config.c_candidates.size() > 1 &&
      static_cast<int>(split.train_indices.size()) >= 2 * config.inner_folds) {
    double best_accuracy = -1.0;
    for (double c : config.c_candidates) {
      double accuracy =
          InnerCvAccuracy(gram, labels, split.train_indices, c, config);
      if (accuracy > best_accuracy) {
        best_accuracy = accuracy;
        best_c = c;
      }
    }
  }
  SvmConfig svm_config = config.svm;
  svm_config.c = best_c;
  KernelSvm svm;
  svm.Train(gram, labels, split.train_indices, svm_config);
  return svm.Evaluate(gram, labels, split.test_indices);
}

eval::CvResult KernelSvmCrossValidate(const kernels::Matrix& gram,
                                      const std::vector<int>& labels,
                                      int num_folds, uint64_t seed,
                                      const KernelSvmConfig& config) {
  return eval::CrossValidate(
      labels, num_folds, seed, [&](const eval::FoldSplit& split, int fold) {
        KernelSvmConfig fold_config = config;
        fold_config.svm.seed = config.svm.seed + static_cast<uint64_t>(fold);
        return RunKernelSvmFold(gram, labels, split, fold_config);
      });
}

eval::CvResult GraphKernelBaseline(
    const graph::GraphDataset& dataset,
    const kernels::VertexFeatureConfig& feature_config, int num_folds,
    uint64_t seed, const KernelSvmConfig& config) {
  const auto maps = kernels::ComputeGraphFeatureMaps(dataset, feature_config);
  const kernels::Matrix gram = kernels::GramMatrix(maps, config.normalize);
  return KernelSvmCrossValidate(gram, dataset.labels(), num_folds, seed,
                                config);
}

}  // namespace deepmap::baselines
