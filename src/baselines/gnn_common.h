// Shared infrastructure for the GNN baselines (DGCNN, GIN, DCNN,
// PATCHY-SAN): vertex input construction (one-hot labels for Table 3, kernel
// vertex feature maps for Table 4) and the trainable graph-convolution layer
// they build on.
#ifndef DEEPMAP_BASELINES_GNN_COMMON_H_
#define DEEPMAP_BASELINES_GNN_COMMON_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "graph/dataset.h"
#include "kernels/vertex_feature_map.h"
#include "nn/graph_conv.h"
#include "nn/layer.h"

namespace deepmap::baselines {

/// Supplies per-vertex dense feature rows for a dataset.
struct VertexFeatureProvider {
  int dim = 0;
  /// row(g, v) -> dense vector of length dim.
  std::function<std::vector<double>(int, int)> row;
};

/// One-hot vertex-label features (the paper's Table 3 GNN input).
VertexFeatureProvider OneHotProvider(const graph::GraphDataset& dataset);

/// Kernel vertex-feature-map features (the paper's Table 4 GNN input).
/// `features` must outlive the provider.
VertexFeatureProvider FeatureMapProvider(
    const kernels::DatasetVertexFeatures& features);

/// [n, dim] feature tensor of one graph.
nn::Tensor VertexFeatureTensor(const graph::GraphDataset& dataset,
                               const VertexFeatureProvider& provider,
                               int graph_index);

/// Feature tensors for every graph.
std::vector<nn::Tensor> BuildVertexFeatureTensors(
    const graph::GraphDataset& dataset, const VertexFeatureProvider& provider);

/// Trainable graph convolution Z = act(S X W) for a per-sample operator S.
class GraphConvLayer {
 public:
  enum class Activation { kNone, kRelu, kTanh };

  GraphConvLayer(int in_features, int out_features, Activation activation,
                 Rng& rng);

  /// Forward for one sample; `op` must stay alive until Backward returns.
  nn::Tensor Forward(const nn::GraphOp& op, const nn::Tensor& x);

  /// Accumulates the weight gradient and returns dLoss/dX.
  nn::Tensor Backward(const nn::Tensor& grad_output);

  void CollectParams(std::vector<nn::Param>* params);

  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Activation activation_;
  nn::Tensor weights_;  // [in, out]
  nn::Tensor weights_grad_;
  const nn::GraphOp* cached_op_ = nullptr;
  nn::Tensor cached_h_;    // S X
  nn::Tensor cached_pre_;  // S X W (pre-activation)
};

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_GNN_COMMON_H_
