// GIN baseline (Xu et al., ICLR 2019): injective sum aggregation
// h' = MLP((1 + eps) h + sum_{u in N(v)} h_u) per layer, with per-layer
// sum-pooled readouts concatenated into the classifier head.
#ifndef DEEPMAP_BASELINES_GIN_H_
#define DEEPMAP_BASELINES_GIN_H_

#include <memory>
#include <vector>

#include "baselines/gnn_common.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/model.h"

namespace deepmap::baselines {

/// GIN hyperparameters.
struct GinConfig {
  int num_layers = 3;
  int hidden_units = 32;
  double eps = 0.0;
  double dropout_rate = 0.5;
  uint64_t seed = 42;
};

/// One training sample: vertex features plus the sum-aggregation operator.
struct GinSample {
  nn::Tensor features;  // [n, m]
  nn::GraphOp op;       // (1 + eps) I + A
};

/// Builds GIN samples for every graph.
std::vector<GinSample> BuildGinSamples(const graph::GraphDataset& dataset,
                                       const VertexFeatureProvider& provider,
                                       double eps = 0.0);

/// The GIN network; Model concept with Sample = GinSample.
class GinModel {
 public:
  GinModel(int feature_dim, int num_classes, const GinConfig& config);

  nn::Tensor Forward(const GinSample& sample, bool training);
  void Backward(const nn::Tensor& grad_logits);
  std::vector<nn::Param> Params();

 private:
  // One GIN layer: aggregation (fixed op) followed by a 2-layer ReLU MLP
  // and a row-L2 normalization (the batch-norm stand-in: sum aggregation
  // otherwise grows activations with vertex count and diverges).
  struct GinLayer {
    std::unique_ptr<GraphConvLayer> mlp1;  // aggregation + first dense+relu
    std::unique_ptr<nn::Dense> mlp2;
    std::unique_ptr<nn::Layer> relu2;
    std::unique_ptr<nn::Layer> norm;
  };

  Rng rng_;
  GinConfig config_;
  std::vector<GinLayer> layers_;
  nn::Sequential head_;  // Dense + ReLU + Dropout + Dense over concat readout
  // Forward caches.
  std::vector<nn::Tensor> layer_outputs_;  // h_1..h_L, each [n, hidden]
  int cached_n_ = 0;
};

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_GIN_H_
