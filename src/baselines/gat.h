// GAT graph-classification baseline (Velickovic et al., ICLR 2018 — the
// paper's reference [29], discussed in its Section 2.2).
//
// Single-head graph attention layers: z = X W, attention logits
// e_vu = LeakyReLU(a_src . z_v + a_dst . z_u) over u in N(v) u {v},
// alpha = softmax_u(e_vu), h_v = ReLU(sum_u alpha_vu z_u); mean-pool
// readout + dense head for graph classification. The backward pass
// differentiates through the attention softmax exactly (verified by finite
// differences in the test suite).
//
// Attention state lives on a flattened sparse::Pattern over the self-first
// neighborhoods (one slot per logit): the forward aggregation is an
// edge-weighted SpMM, dL/dalpha is an SDDMM, and the direct grad_z path is
// the transpose SpMM — the sparse-substrate execution of GAT, bit-identical
// to the per-neighbor loops it replaced.
#ifndef DEEPMAP_BASELINES_GAT_H_
#define DEEPMAP_BASELINES_GAT_H_

#include <memory>
#include <vector>

#include "baselines/gnn_common.h"
#include "graph/graph.h"
#include "nn/model.h"
#include "nn/pooling.h"
#include "sparse/spmm.h"

namespace deepmap::baselines {

/// GAT hyperparameters.
struct GatConfig {
  int num_layers = 2;
  int hidden_units = 16;
  double leaky_slope = 0.2;
  double dropout_rate = 0.5;
  uint64_t seed = 42;
};

/// One training sample: vertex features plus the graph (attention needs the
/// neighbor lists, not a fixed linear operator).
struct GatSample {
  nn::Tensor features;  // [n, m]
  graph::Graph graph;
};

/// Builds GAT samples for every graph.
std::vector<GatSample> BuildGatSamples(const graph::GraphDataset& dataset,
                                       const VertexFeatureProvider& provider);

/// One single-head attention layer with exact backward.
class GatLayer {
 public:
  GatLayer(int in_features, int out_features, double leaky_slope, Rng& rng);

  /// `graph` must stay alive until Backward returns.
  nn::Tensor Forward(const graph::Graph& graph, const nn::Tensor& x);

  /// Accumulates parameter gradients; returns dLoss/dX.
  nn::Tensor Backward(const nn::Tensor& grad_output);

  void CollectParams(std::vector<nn::Param>* params);

 private:
  int in_features_;
  int out_features_;
  float leaky_slope_;
  nn::Tensor weights_;  // [in, out]
  nn::Tensor attn_src_;  // [out]
  nn::Tensor attn_dst_;  // [out]
  nn::Tensor weights_grad_;
  nn::Tensor attn_src_grad_;
  nn::Tensor attn_dst_grad_;
  // Forward caches. Attention state is slot-indexed by the pattern's CSR
  // layout (row v = v itself, then N(v) in sorted order).
  sparse::Pattern pattern_;     // self-first neighborhoods of cached graph
  nn::Tensor cached_x_;
  nn::Tensor cached_z_;         // X W
  std::vector<float> alpha_;    // attention weights, one per slot
  std::vector<float> raw_;      // pre-LeakyReLU logits, one per slot
  nn::Tensor cached_pre_;       // pre-ReLU output
};

/// The GAT network; Model concept with Sample = GatSample.
class GatModel {
 public:
  GatModel(int feature_dim, int num_classes, const GatConfig& config);

  nn::Tensor Forward(const GatSample& sample, bool training);
  void Backward(const nn::Tensor& grad_logits);
  std::vector<nn::Param> Params();

 private:
  Rng rng_;
  GatConfig config_;
  std::vector<std::unique_ptr<GatLayer>> layers_;
  nn::MeanPool readout_;
  nn::Sequential head_;
};

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_GAT_H_
