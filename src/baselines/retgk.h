// RetGK (Zhang et al., NeurIPS 2018): graph kernels from return
// probabilities of random walks.
//
// Each vertex gets a return-probability feature (RPF) vector
// r(v) = [P(v->v in 1 step), ..., P(v->v in S steps)], an isomorphism-
// invariant structural-role descriptor. The graph kernel is the mean map /
// MMD-style kernel between the vertex sets in the RPF Hilbert space:
//   K(G1, G2) = (1/(n1 n2)) sum_{u in G1} sum_{v in G2}
//               [l(u) == l(v)] * exp(-gamma ||r(u) - r(v)||^2),
// with the label indicator matching RetGK's treatment of labeled graphs.
#ifndef DEEPMAP_BASELINES_RETGK_H_
#define DEEPMAP_BASELINES_RETGK_H_

#include <vector>

#include "graph/dataset.h"
#include "graph/graph.h"
#include "kernels/kernel_matrix.h"

namespace deepmap::baselines {

/// RetGK hyperparameters.
struct RetGkConfig {
  /// Random-walk horizon S (number of steps in the RPF).
  int walk_steps = 8;
  /// RBF bandwidth on RPF vectors.
  double gamma = 10.0;
  /// Require matching vertex labels in the vertex kernel.
  bool use_labels = true;
};

/// Return-probability features: result[v][t-1] = (P^t)_{vv}, t = 1..S.
std::vector<std::vector<double>> ReturnProbabilityFeatures(
    const graph::Graph& g, int walk_steps);

/// RetGK kernel matrix over the dataset (cosine-normalized).
kernels::Matrix RetGkKernelMatrix(const graph::GraphDataset& dataset,
                                  const RetGkConfig& config = {});

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_RETGK_H_
