#include "baselines/svm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace deepmap::baselines {

void BinarySmoSvm::Train(const kernels::Matrix& gram,
                         const std::vector<int>& train_indices,
                         const std::vector<int>& binary_labels,
                         const SvmConfig& config) {
  DEEPMAP_CHECK_EQ(train_indices.size(), binary_labels.size());
  const int n = static_cast<int>(train_indices.size());
  DEEPMAP_CHECK_GT(n, 0);
  train_indices_ = train_indices;
  y_ = binary_labels;
  for (int y : y_) DEEPMAP_CHECK(y == 1 || y == -1);
  alpha_.assign(n, 0.0);
  b_ = 0.0;

  auto k = [&](int i, int j) {
    return gram[train_indices_[i]][train_indices_[j]];
  };
  auto f = [&](int i) {
    double sum = b_;
    for (int t = 0; t < n; ++t) {
      if (alpha_[t] > 0.0) sum += alpha_[t] * y_[t] * k(t, i);
    }
    return sum;
  };

  // Simplified SMO (Platt; CS229 variant): pick i violating KKT, pair with
  // a random j, solve the 2-variable subproblem analytically.
  Rng rng(config.seed);
  const double c = config.c;
  const double tol = config.tolerance;
  int passes = 0;
  int iterations = 0;
  while (passes < config.max_passes && iterations < config.max_iterations) {
    int changed = 0;
    for (int i = 0; i < n; ++i) {
      ++iterations;
      double ei = f(i) - y_[i];
      bool violates = (y_[i] * ei < -tol && alpha_[i] < c) ||
                      (y_[i] * ei > tol && alpha_[i] > 0.0);
      if (!violates) continue;
      int j = static_cast<int>(rng.Index(static_cast<size_t>(n)));
      if (j == i) j = (j + 1) % n;
      if (n == 1) continue;
      double ej = f(j) - y_[j];
      double ai_old = alpha_[i], aj_old = alpha_[j];
      double lo, hi;
      if (y_[i] != y_[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      double eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
      if (eta >= 0.0) continue;
      double aj = aj_old - y_[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::fabs(aj - aj_old) < 1e-5) continue;
      double ai = ai_old + y_[i] * y_[j] * (aj_old - aj);
      alpha_[i] = ai;
      alpha_[j] = aj;
      double b1 = b_ - ei - y_[i] * (ai - ai_old) * k(i, i) -
                  y_[j] * (aj - aj_old) * k(i, j);
      double b2 = b_ - ej - y_[i] * (ai - ai_old) * k(i, j) -
                  y_[j] * (aj - aj_old) * k(j, j);
      if (ai > 0.0 && ai < c) {
        b_ = b1;
      } else if (aj > 0.0 && aj < c) {
        b_ = b2;
      } else {
        b_ = (b1 + b2) / 2.0;
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }
}

double BinarySmoSvm::DecisionValue(const kernels::Matrix& gram,
                                   int sample_index) const {
  double sum = b_;
  for (size_t t = 0; t < train_indices_.size(); ++t) {
    if (alpha_[t] > 0.0) {
      sum += alpha_[t] * y_[t] * gram[train_indices_[t]][sample_index];
    }
  }
  return sum;
}

int BinarySmoSvm::NumSupportVectors() const {
  int count = 0;
  for (double a : alpha_) {
    if (a > 1e-12) ++count;
  }
  return count;
}

void KernelSvm::Train(const kernels::Matrix& gram,
                      const std::vector<int>& labels,
                      const std::vector<int>& train_indices,
                      const SvmConfig& config) {
  int num_classes = 0;
  for (int i : train_indices) {
    num_classes = std::max(num_classes, labels[i] + 1);
  }
  DEEPMAP_CHECK_GE(num_classes, 2);
  // Binary problems need a single machine; multiclass gets one per class.
  const int num_machines = num_classes == 2 ? 1 : num_classes;
  machines_.assign(num_machines, BinarySmoSvm());
  for (int c = 0; c < num_machines; ++c) {
    std::vector<int> binary;
    binary.reserve(train_indices.size());
    for (int i : train_indices) binary.push_back(labels[i] == c ? 1 : -1);
    SvmConfig machine_config = config;
    machine_config.seed = config.seed + static_cast<uint64_t>(c);
    machines_[c].Train(gram, train_indices, binary, machine_config);
  }
}

int KernelSvm::Predict(const kernels::Matrix& gram, int sample_index) const {
  DEEPMAP_CHECK(!machines_.empty());
  if (machines_.size() == 1) {
    // Binary: machine 0 separates class 0 (+1) from class 1 (-1).
    return machines_[0].DecisionValue(gram, sample_index) >= 0.0 ? 0 : 1;
  }
  int best = 0;
  double best_value = machines_[0].DecisionValue(gram, sample_index);
  for (size_t c = 1; c < machines_.size(); ++c) {
    double value = machines_[c].DecisionValue(gram, sample_index);
    if (value > best_value) {
      best_value = value;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double KernelSvm::Evaluate(const kernels::Matrix& gram,
                           const std::vector<int>& labels,
                           const std::vector<int>& test_indices) const {
  if (test_indices.empty()) return 0.0;
  int correct = 0;
  for (int i : test_indices) {
    if (Predict(gram, i) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / test_indices.size();
}

}  // namespace deepmap::baselines
