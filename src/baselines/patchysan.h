// PATCHY-SAN baseline (Niepert et al., ICML 2016): select a fixed-length
// vertex sequence, assemble a size-k receptive field per selected vertex,
// normalize by a canonical order, and run a CNN.
//
// Substitution (DESIGN.md #2): the original normalizes with NAUTY; this
// implementation orders vertices by eigenvector centrality — the replacement
// the DEEPMAP paper itself argues for. Unlike DEEPMAP, PATCHY-SAN keeps only
// the top `sequence_length` vertices (not all w), which is its documented
// information loss.
#ifndef DEEPMAP_BASELINES_PATCHYSAN_H_
#define DEEPMAP_BASELINES_PATCHYSAN_H_

#include <vector>

#include "baselines/gnn_common.h"
#include "core/alignment.h"
#include "nn/model.h"

namespace deepmap::baselines {

/// PATCHY-SAN hyperparameters.
struct PatchySanConfig {
  /// Number of selected vertices (the original uses the dataset's average
  /// vertex count).
  int sequence_length = 10;
  /// Receptive-field size k.
  int field_size = 5;
  int conv_channels = 16;
  int conv2_channels = 8;
  int dense_units = 128;
  double dropout_rate = 0.5;
  uint64_t seed = 42;
};

/// Builds the [sequence_length * field_size, dim] input of one graph.
nn::Tensor BuildPatchySanInput(const graph::GraphDataset& dataset,
                               const VertexFeatureProvider& provider,
                               int graph_index, const PatchySanConfig& config);

/// Inputs for every graph.
std::vector<nn::Tensor> BuildPatchySanInputs(
    const graph::GraphDataset& dataset, const VertexFeatureProvider& provider,
    const PatchySanConfig& config);

/// The PATCHY-SAN CNN; Model concept with Sample = nn::Tensor.
class PatchySanModel {
 public:
  PatchySanModel(int feature_dim, int num_classes,
                 const PatchySanConfig& config);

  nn::Tensor Forward(const nn::Tensor& input, bool training);
  void Backward(const nn::Tensor& grad_logits);
  std::vector<nn::Param> Params();

 private:
  Rng rng_;
  nn::Sequential net_;
};

/// Default sequence length for a dataset: its average vertex count (the
/// original paper's w).
int DefaultPatchySanSequenceLength(const graph::GraphDataset& dataset);

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_PATCHYSAN_H_
