#include "baselines/gat.h"

#include <cmath>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"

namespace deepmap::baselines {

std::vector<GatSample> BuildGatSamples(const graph::GraphDataset& dataset,
                                       const VertexFeatureProvider& provider) {
  std::vector<GatSample> samples;
  samples.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    samples.push_back(GatSample{VertexFeatureTensor(dataset, provider, g),
                                dataset.graph(g)});
  }
  return samples;
}

GatLayer::GatLayer(int in_features, int out_features, double leaky_slope,
                   Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      leaky_slope_(static_cast<float>(leaky_slope)),
      weights_({in_features, out_features}),
      attn_src_({out_features}),
      attn_dst_({out_features}),
      weights_grad_({in_features, out_features}),
      attn_src_grad_({out_features}),
      attn_dst_grad_({out_features}) {
  nn::GlorotInit(weights_, in_features, out_features, rng);
  nn::GlorotInit(attn_src_, out_features, 1, rng);
  nn::GlorotInit(attn_dst_, out_features, 1, rng);
}

nn::Tensor GatLayer::Forward(const graph::Graph& graph, const nn::Tensor& x) {
  DEEPMAP_CHECK_EQ(x.rank(), 2);
  DEEPMAP_CHECK_EQ(x.dim(0), graph.NumVertices());
  DEEPMAP_CHECK_EQ(x.dim(1), in_features_);
  const int n = graph.NumVertices();
  pattern_ = sparse::Pattern::SelfFirstNeighborhood(graph);
  cached_x_ = x;
  cached_z_ = nn::MatMul(x, weights_);  // [n, out]

  // Per-vertex attention scores s_v = a_src . z_v and t_v = a_dst . z_v.
  std::vector<float> s(n, 0.0f), t(n, 0.0f);
  for (int v = 0; v < n; ++v) {
    for (int c = 0; c < out_features_; ++c) {
      s[v] += attn_src_.at(c) * cached_z_.at(v, c);
      t[v] += attn_dst_.at(c) * cached_z_.at(v, c);
    }
  }

  // Logits + row-wise softmax over the pattern slots.
  raw_.assign(static_cast<size_t>(pattern_.nnz()), 0.0f);
  alpha_.assign(static_cast<size_t>(pattern_.nnz()), 0.0f);
  for (int v = 0; v < n; ++v) {
    const int64_t begin = pattern_.row_ptr[v];
    const int64_t end = pattern_.row_ptr[v + 1];
    float max_logit = -1e30f;
    for (int64_t k = begin; k < end; ++k) {
      const graph::Vertex u = pattern_.col[k];
      const float e = s[v] + t[u];
      raw_[k] = e;
      const float activated = e > 0 ? e : leaky_slope_ * e;
      alpha_[k] = activated;
      max_logit = std::max(max_logit, activated);
    }
    double total = 0.0;
    for (int64_t k = begin; k < end; ++k) {
      alpha_[k] = std::exp(alpha_[k] - max_logit);
      total += alpha_[k];
    }
    for (int64_t k = begin; k < end; ++k) {
      alpha_[k] = static_cast<float>(alpha_[k] / total);
    }
  }
  // h_v = sum_u alpha_vu z_u: edge-weighted SpMM over the pattern.
  nn::Tensor out({n, out_features_});
  sparse::SpmmEdgeValues(pattern_, alpha_.data(), cached_z_, &out);
  cached_pre_ = out;
  for (int i = 0; i < out.NumElements(); ++i) {
    if (out.data()[i] < 0.0f) out.data()[i] = 0.0f;  // ReLU
  }
  return out;
}

nn::Tensor GatLayer::Backward(const nn::Tensor& grad_output) {
  const int n = pattern_.rows;
  DEEPMAP_CHECK_GT(n, 0);
  // ReLU backward.
  nn::Tensor grad_h = grad_output;
  for (int i = 0; i < grad_h.NumElements(); ++i) {
    if (cached_pre_.data()[i] <= 0.0f) grad_h.data()[i] = 0.0f;
  }

  // dL/dalpha_vu = grad_h[v] . z_u: SDDMM over the attention pattern.
  const std::vector<double> grad_alpha =
      sparse::Sddmm(pattern_, grad_h, cached_z_);
  // Direct path grad_z_u += alpha_vu grad_h_v: transpose SpMM.
  nn::Tensor grad_z({n, out_features_});
  sparse::SpmmEdgeValuesTranspose(pattern_, alpha_.data(), grad_h, &grad_z);

  // Softmax + LeakyReLU backward to the logits e_vu = s_v + t_u.
  std::vector<float> grad_s(n, 0.0f), grad_t(n, 0.0f);
  for (int v = 0; v < n; ++v) {
    const int64_t begin = pattern_.row_ptr[v];
    const int64_t end = pattern_.row_ptr[v + 1];
    double weighted_sum = 0.0;  // sum_w alpha_vw * dL/dalpha_vw
    for (int64_t k = begin; k < end; ++k) {
      weighted_sum += alpha_[k] * grad_alpha[k];
    }
    for (int64_t k = begin; k < end; ++k) {
      const graph::Vertex u = pattern_.col[k];
      double grad_e = alpha_[k] * (grad_alpha[k] - weighted_sum);
      grad_e *= raw_[k] > 0 ? 1.0 : leaky_slope_;
      grad_s[v] += static_cast<float>(grad_e);
      grad_t[u] += static_cast<float>(grad_e);
    }
  }
  // s_v = a_src . z_v, t_v = a_dst . z_v.
  for (int v = 0; v < n; ++v) {
    for (int c = 0; c < out_features_; ++c) {
      attn_src_grad_.at(c) += grad_s[v] * cached_z_.at(v, c);
      attn_dst_grad_.at(c) += grad_t[v] * cached_z_.at(v, c);
      grad_z.at(v, c) +=
          grad_s[v] * attn_src_.at(c) + grad_t[v] * attn_dst_.at(c);
    }
  }
  // z = X W.
  weights_grad_.Add(nn::MatMulTransposedA(cached_x_, grad_z));
  return nn::MatMulTransposedB(grad_z, weights_);
}

void GatLayer::CollectParams(std::vector<nn::Param>* params) {
  params->push_back({&weights_, &weights_grad_});
  params->push_back({&attn_src_, &attn_src_grad_});
  params->push_back({&attn_dst_, &attn_dst_grad_});
}

GatModel::GatModel(int feature_dim, int num_classes, const GatConfig& config)
    : rng_(config.seed), config_(config) {
  DEEPMAP_CHECK_GT(config.num_layers, 0);
  int in = feature_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    layers_.push_back(std::make_unique<GatLayer>(in, config.hidden_units,
                                                 config.leaky_slope, rng_));
    in = config.hidden_units;
  }
  head_.Emplace<nn::Dense>(config.hidden_units, config.hidden_units, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Dropout>(config.dropout_rate, rng_)
      .Emplace<nn::Dense>(config.hidden_units, num_classes, rng_);
}

nn::Tensor GatModel::Forward(const GatSample& sample, bool training) {
  nn::Tensor h = sample.features;
  for (auto& layer : layers_) h = layer->Forward(sample.graph, h);
  nn::Tensor pooled = readout_.Forward(h, training);
  return head_.Forward(pooled, training);
}

void GatModel::Backward(const nn::Tensor& grad_logits) {
  nn::Tensor g = head_.Backward(grad_logits);
  g = readout_.Backward(g);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
}

std::vector<nn::Param> GatModel::Params() {
  std::vector<nn::Param> params;
  for (auto& layer : layers_) layer->CollectParams(&params);
  std::vector<nn::Param> head_params = head_.Params();
  params.insert(params.end(), head_params.begin(), head_params.end());
  return params;
}

}  // namespace deepmap::baselines
