// GraphSAGE graph-classification baseline (Hamilton, Ying & Leskovec,
// NeurIPS 2017 — the paper's reference [32], discussed in its Section 2.2).
//
// Inductive aggregate-and-concat layers:
//   h'_v = ReLU(W_self h_v + W_neigh * mean_{u in N(v)} h_u)
// followed by row L2 normalization (as in the original), a mean-pool
// readout, and a dense head. The mean aggregator is the canonical variant;
// neighbor sampling is unnecessary at these graph sizes (full neighborhoods
// are used, equivalent to sampling with sample size >= max degree).
#ifndef DEEPMAP_BASELINES_GRAPHSAGE_H_
#define DEEPMAP_BASELINES_GRAPHSAGE_H_

#include <memory>
#include <vector>

#include "baselines/gnn_common.h"
#include "nn/activations.h"
#include "nn/model.h"
#include "nn/pooling.h"

namespace deepmap::baselines {

/// GraphSAGE hyperparameters.
struct GraphSageConfig {
  int num_layers = 2;
  int hidden_units = 16;
  double dropout_rate = 0.5;
  uint64_t seed = 42;
};

/// One training sample: vertex features plus the mean-neighbor operator.
struct GraphSageSample {
  nn::Tensor features;  // [n, m]
  nn::GraphOp mean_op;  // D^-1 A (rows of isolated vertices are zero)
};

/// Builds GraphSAGE samples for every graph.
std::vector<GraphSageSample> BuildGraphSageSamples(
    const graph::GraphDataset& dataset, const VertexFeatureProvider& provider);

/// One SAGE layer: self transform + mean-neighbor transform, ReLU, row L2.
class GraphSageLayer {
 public:
  GraphSageLayer(int in_features, int out_features, Rng& rng);

  nn::Tensor Forward(const nn::GraphOp& mean_op, const nn::Tensor& x);
  nn::Tensor Backward(const nn::Tensor& grad_output);
  void CollectParams(std::vector<nn::Param>* params);

 private:
  int in_features_;
  int out_features_;
  nn::Tensor w_self_, w_neigh_;  // [in, out]
  nn::Tensor w_self_grad_, w_neigh_grad_;
  const nn::GraphOp* cached_op_ = nullptr;
  nn::Tensor cached_x_;
  nn::Tensor cached_mean_;  // mean_op(x)
  nn::Tensor cached_pre_;   // pre-ReLU
  nn::RowL2Normalize norm_;
};

/// The GraphSAGE network; Model concept with Sample = GraphSageSample.
class GraphSageModel {
 public:
  GraphSageModel(int feature_dim, int num_classes,
                 const GraphSageConfig& config);

  nn::Tensor Forward(const GraphSageSample& sample, bool training);
  void Backward(const nn::Tensor& grad_logits);
  std::vector<nn::Param> Params();

 private:
  Rng rng_;
  std::vector<std::unique_ptr<GraphSageLayer>> layers_;
  nn::MeanPool readout_;
  nn::Sequential head_;
};

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_GRAPHSAGE_H_
