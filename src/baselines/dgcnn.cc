#include "baselines/dgcnn.h"

#include "common/check.h"

namespace deepmap::baselines {

std::vector<DgcnnSample> BuildDgcnnSamples(
    const graph::GraphDataset& dataset,
    const VertexFeatureProvider& provider) {
  std::vector<DgcnnSample> samples;
  samples.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    samples.push_back(
        DgcnnSample{VertexFeatureTensor(dataset, provider, g),
                    nn::GraphOp::RowNormAdj(dataset.graph(g))});
  }
  return samples;
}

DgcnnModel::DgcnnModel(int feature_dim, int num_classes,
                       const DgcnnConfig& config)
    : rng_(config.seed), config_(config), sortpool_(config.sortpool_k) {
  DEEPMAP_CHECK(!config.conv_channels.empty());
  int in = feature_dim;
  concat_dim_ = 0;
  for (int out : config.conv_channels) {
    convs_.push_back(std::make_unique<GraphConvLayer>(
        in, out, GraphConvLayer::Activation::kTanh, rng_));
    layer_dims_.push_back(out);
    concat_dim_ += out;
    in = out;
  }
  head_.Emplace<nn::Conv1D>(concat_dim_, config.conv1d_channels, 1, 1, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Flatten>()
      .Emplace<nn::Dense>(config.conv1d_channels * config.sortpool_k,
                          config.dense_units, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Dropout>(config.dropout_rate, rng_)
      .Emplace<nn::Dense>(config.dense_units, num_classes, rng_);
}

nn::Tensor DgcnnModel::Forward(const DgcnnSample& sample, bool training) {
  const int n = sample.features.dim(0);
  cached_n_ = n;
  // Stacked convolutions; concatenate every layer's output channel-wise.
  nn::Tensor concat({n, concat_dim_});
  nn::Tensor z = sample.features;
  int offset = 0;
  for (size_t l = 0; l < convs_.size(); ++l) {
    z = convs_[l]->Forward(sample.op, z);
    for (int v = 0; v < n; ++v) {
      for (int c = 0; c < layer_dims_[l]; ++c) {
        concat.at(v, offset + c) = z.at(v, c);
      }
    }
    offset += layer_dims_[l];
  }
  nn::Tensor pooled = sortpool_.Forward(concat, training);
  return head_.Forward(pooled, training);
}

void DgcnnModel::Backward(const nn::Tensor& grad_logits) {
  nn::Tensor grad_pooled = head_.Backward(grad_logits);
  nn::Tensor grad_concat = sortpool_.Backward(grad_pooled);
  // Split the concat gradient and run the conv stack backward. The last
  // layer's input is the previous layer's output, so gradients flow both
  // from the concat slice and from the next layer.
  const int n = cached_n_;
  nn::Tensor grad_next;  // dLoss/d(output of layer l) from layer l+1
  for (int l = static_cast<int>(convs_.size()) - 1; l >= 0; --l) {
    int offset = 0;
    for (int t = 0; t < l; ++t) offset += layer_dims_[t];
    nn::Tensor grad_out({n, layer_dims_[l]});
    for (int v = 0; v < n; ++v) {
      for (int c = 0; c < layer_dims_[l]; ++c) {
        grad_out.at(v, c) = grad_concat.at(v, offset + c);
      }
    }
    if (!grad_next.empty()) grad_out.Add(grad_next);
    grad_next = convs_[l]->Backward(grad_out);
  }
}

std::vector<nn::Param> DgcnnModel::Params() {
  std::vector<nn::Param> params;
  for (auto& conv : convs_) conv->CollectParams(&params);
  std::vector<nn::Param> head_params = head_.Params();
  params.insert(params.end(), head_params.begin(), head_params.end());
  return params;
}

}  // namespace deepmap::baselines
