// Graph-kernel + C-SVM pipelines (the paper's GK / SP / WL baselines),
// including the paper's per-fold C tuning over {1, 10, 100, 1000} via inner
// cross-validation on the fold's training data.
#ifndef DEEPMAP_BASELINES_KERNEL_SVM_H_
#define DEEPMAP_BASELINES_KERNEL_SVM_H_

#include <vector>

#include "baselines/svm.h"
#include "eval/cross_validation.h"
#include "graph/dataset.h"
#include "kernels/vertex_feature_map.h"

namespace deepmap::baselines {

/// Pipeline configuration.
struct KernelSvmConfig {
  /// Candidate soft-margin penalties (paper Section 5.1).
  std::vector<double> c_candidates{1.0, 10.0, 100.0, 1000.0};
  /// Inner folds used to tune C on each outer fold's training data.
  int inner_folds = 3;
  SvmConfig svm;
  /// Cosine-normalize the Gram matrix (standard for graph kernels).
  bool normalize = true;
};

/// Runs one outer fold: tunes C on the training split via inner CV, trains
/// with the best C, returns test accuracy in [0, 1].
double RunKernelSvmFold(const kernels::Matrix& gram,
                        const std::vector<int>& labels,
                        const eval::FoldSplit& split,
                        const KernelSvmConfig& config);

/// Full k-fold cross validation for a precomputed Gram matrix.
eval::CvResult KernelSvmCrossValidate(const kernels::Matrix& gram,
                                      const std::vector<int>& labels,
                                      int num_folds, uint64_t seed,
                                      const KernelSvmConfig& config = {});

/// Convenience: computes graph feature maps for `dataset` under
/// `feature_config`, builds the (normalized) Gram matrix, and cross
/// validates. This is the paper's GK/SP/WL+SVM baseline in one call.
eval::CvResult GraphKernelBaseline(
    const graph::GraphDataset& dataset,
    const kernels::VertexFeatureConfig& feature_config, int num_folds,
    uint64_t seed, const KernelSvmConfig& config = {});

}  // namespace deepmap::baselines

#endif  // DEEPMAP_BASELINES_KERNEL_SVM_H_
