#include "baselines/retgk.h"

#include <cmath>

#include "common/check.h"
#include "nn/graph_conv.h"

namespace deepmap::baselines {

std::vector<std::vector<double>> ReturnProbabilityFeatures(
    const graph::Graph& g, int walk_steps) {
  DEEPMAP_CHECK_GT(walk_steps, 0);
  const int n = g.NumVertices();
  std::vector<std::vector<double>> rpf(
      n, std::vector<double>(walk_steps, 0.0));
  if (n == 0) return rpf;
  const nn::GraphOp p = nn::GraphOp::Transition(g);
  nn::GraphOp power = p;
  for (int t = 1; t <= walk_steps; ++t) {
    for (int v = 0; v < n; ++v) rpf[v][t - 1] = power.entry(v, v);
    if (t < walk_steps) power = power.Compose(p);
  }
  return rpf;
}

kernels::Matrix RetGkKernelMatrix(const graph::GraphDataset& dataset,
                                  const RetGkConfig& config) {
  const int n = dataset.size();
  // Precompute RPFs for every graph.
  std::vector<std::vector<std::vector<double>>> rpf(n);
  for (int g = 0; g < n; ++g) {
    rpf[g] = ReturnProbabilityFeatures(dataset.graph(g), config.walk_steps);
  }
  auto vertex_kernel = [&](int gi, int u, int gj, int v) {
    if (config.use_labels &&
        dataset.graph(gi).GetLabel(u) != dataset.graph(gj).GetLabel(v)) {
      return 0.0;
    }
    double squared = 0.0;
    for (int t = 0; t < config.walk_steps; ++t) {
      double diff = rpf[gi][u][t] - rpf[gj][v][t];
      squared += diff * diff;
    }
    return std::exp(-config.gamma * squared);
  };
  kernels::Matrix k(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    const int ni = dataset.graph(i).NumVertices();
    for (int j = i; j < n; ++j) {
      const int nj = dataset.graph(j).NumVertices();
      if (ni == 0 || nj == 0) continue;
      double total = 0.0;
      for (int u = 0; u < ni; ++u) {
        for (int v = 0; v < nj; ++v) total += vertex_kernel(i, u, j, v);
      }
      double value = total / (static_cast<double>(ni) * nj);
      k[i][j] = value;
      k[j][i] = value;
    }
  }
  kernels::NormalizeKernelMatrix(k);
  return k;
}

}  // namespace deepmap::baselines
