#include "baselines/gin.h"

#include "common/check.h"
#include "nn/activations.h"

namespace deepmap::baselines {

std::vector<GinSample> BuildGinSamples(const graph::GraphDataset& dataset,
                                       const VertexFeatureProvider& provider,
                                       double eps) {
  std::vector<GinSample> samples;
  samples.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    samples.push_back(GinSample{VertexFeatureTensor(dataset, provider, g),
                                nn::GraphOp::SumAdj(dataset.graph(g), eps)});
  }
  return samples;
}

GinModel::GinModel(int feature_dim, int num_classes, const GinConfig& config)
    : rng_(config.seed), config_(config) {
  DEEPMAP_CHECK_GT(config.num_layers, 0);
  int in = feature_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    GinLayer layer;
    layer.mlp1 = std::make_unique<GraphConvLayer>(
        in, config.hidden_units, GraphConvLayer::Activation::kRelu, rng_);
    layer.mlp2 = std::make_unique<nn::Dense>(config.hidden_units,
                                             config.hidden_units, rng_);
    layer.relu2 = std::make_unique<nn::Relu>();
    layer.norm = std::make_unique<nn::RowL2Normalize>();
    layers_.push_back(std::move(layer));
    in = config.hidden_units;
  }
  const int readout_dim = config.num_layers * config.hidden_units;
  head_.Emplace<nn::Dense>(readout_dim, config.hidden_units, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Dropout>(config.dropout_rate, rng_)
      .Emplace<nn::Dense>(config.hidden_units, num_classes, rng_);
}

nn::Tensor GinModel::Forward(const GinSample& sample, bool training) {
  const int n = sample.features.dim(0);
  cached_n_ = n;
  layer_outputs_.clear();
  nn::Tensor h = sample.features;
  for (auto& layer : layers_) {
    h = layer.mlp1->Forward(sample.op, h);
    h = layer.mlp2->Forward(h, training);
    h = layer.relu2->Forward(h, training);
    h = layer.norm->Forward(h, training);
    layer_outputs_.push_back(h);
  }
  // Per-layer readout, concatenated. Mean pooling (sum / n) keeps the head
  // input scale independent of the vertex count; without batch norm the raw
  // sum saturates the softmax on large graphs.
  nn::Tensor concat({config_.num_layers * config_.hidden_units});
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int l = 0; l < config_.num_layers; ++l) {
    for (int v = 0; v < n; ++v) {
      for (int c = 0; c < config_.hidden_units; ++c) {
        concat.at(l * config_.hidden_units + c) +=
            layer_outputs_[l].at(v, c) * inv_n;
      }
    }
  }
  return head_.Forward(concat, training);
}

void GinModel::Backward(const nn::Tensor& grad_logits) {
  nn::Tensor grad_concat = head_.Backward(grad_logits);
  const int n = cached_n_;
  // Walk layers from last to first; each layer's output receives gradient
  // from its readout slice plus from the next layer's input.
  nn::Tensor grad_from_next;  // dLoss/d(h_l) contributed by layer l+1
  for (int l = config_.num_layers - 1; l >= 0; --l) {
    const float inv_n = 1.0f / static_cast<float>(n);
    nn::Tensor grad_h({n, config_.hidden_units});
    for (int v = 0; v < n; ++v) {
      for (int c = 0; c < config_.hidden_units; ++c) {
        grad_h.at(v, c) = grad_concat.at(l * config_.hidden_units + c) * inv_n;
      }
    }
    if (!grad_from_next.empty()) grad_h.Add(grad_from_next);
    nn::Tensor g = layers_[l].norm->Backward(grad_h);
    g = layers_[l].relu2->Backward(g);
    g = layers_[l].mlp2->Backward(g);
    grad_from_next = layers_[l].mlp1->Backward(g);
  }
}

std::vector<nn::Param> GinModel::Params() {
  std::vector<nn::Param> params;
  for (auto& layer : layers_) {
    layer.mlp1->CollectParams(&params);
    layer.mlp2->CollectParams(&params);
  }
  std::vector<nn::Param> head_params = head_.Params();
  params.insert(params.end(), head_params.begin(), head_params.end());
  return params;
}

}  // namespace deepmap::baselines
