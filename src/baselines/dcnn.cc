#include "baselines/dcnn.h"

#include "common/check.h"
#include "nn/activations.h"
#include "nn/dropout.h"

namespace deepmap::baselines {

std::vector<DcnnSample> BuildDcnnSamples(const graph::GraphDataset& dataset,
                                         const VertexFeatureProvider& provider,
                                         int num_hops) {
  DEEPMAP_CHECK_GE(num_hops, 0);
  std::vector<DcnnSample> samples;
  samples.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    nn::Tensor x = VertexFeatureTensor(dataset, provider, g);
    const int n = x.dim(0);
    const int m = x.dim(1);
    nn::Tensor diffused({num_hops + 1, m});
    const nn::GraphOp p = nn::GraphOp::Transition(dataset.graph(g));
    nn::Tensor current = x;  // P^0 X
    for (int h = 0; h <= num_hops; ++h) {
      for (int c = 0; c < m; ++c) {
        double mean = 0.0;
        for (int v = 0; v < n; ++v) mean += current.at(v, c);
        diffused.at(h, c) = static_cast<float>(mean / n);
      }
      if (h < num_hops) current = p.Apply(current);
    }
    samples.push_back(DcnnSample{std::move(diffused)});
  }
  return samples;
}

DcnnModel::DcnnModel(int feature_dim, int num_hops, int num_classes,
                     const DcnnConfig& config)
    : rng_(config.seed),
      feature_dim_(feature_dim),
      num_hops_(num_hops),
      hop_weights_({num_hops + 1, feature_dim}),
      hop_weights_grad_({num_hops + 1, feature_dim}) {
  // DCNN initializes the diffusion weights near one (identity-ish gating).
  for (int i = 0; i < hop_weights_.NumElements(); ++i) {
    hop_weights_.data()[i] = 1.0f + static_cast<float>(rng_.Normal(0, 0.1));
  }
  const int flat = (num_hops + 1) * feature_dim;
  head_.Emplace<nn::Dense>(flat, config.dense_units, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Dropout>(config.dropout_rate, rng_)
      .Emplace<nn::Dense>(config.dense_units, num_classes, rng_);
}

nn::Tensor DcnnModel::Forward(const DcnnSample& sample, bool training) {
  DEEPMAP_CHECK_EQ(sample.diffused.dim(0), num_hops_ + 1);
  DEEPMAP_CHECK_EQ(sample.diffused.dim(1), feature_dim_);
  cached_diffused_ = sample.diffused;
  cached_pre_ = sample.diffused;
  for (int i = 0; i < cached_pre_.NumElements(); ++i) {
    cached_pre_.data()[i] *= hop_weights_.data()[i];
  }
  nn::Tensor z = cached_pre_;
  for (int i = 0; i < z.NumElements(); ++i) {
    if (z.data()[i] < 0.0f) z.data()[i] = 0.0f;
  }
  return head_.Forward(z.Reshaped({z.NumElements()}), training);
}

void DcnnModel::Backward(const nn::Tensor& grad_logits) {
  nn::Tensor grad_flat = head_.Backward(grad_logits);
  nn::Tensor grad_z = grad_flat.Reshaped({num_hops_ + 1, feature_dim_});
  for (int i = 0; i < grad_z.NumElements(); ++i) {
    if (cached_pre_.data()[i] <= 0.0f) grad_z.data()[i] = 0.0f;  // ReLU
    hop_weights_grad_.data()[i] +=
        grad_z.data()[i] * cached_diffused_.data()[i];
  }
}

std::vector<nn::Param> DcnnModel::Params() {
  std::vector<nn::Param> params{{&hop_weights_, &hop_weights_grad_}};
  std::vector<nn::Param> head_params = head_.Params();
  params.insert(params.end(), head_params.begin(), head_params.end());
  return params;
}

}  // namespace deepmap::baselines
