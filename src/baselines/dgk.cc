#include "baselines/dgk.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/rng.h"

namespace deepmap::baselines {
namespace {

using kernels::FeatureId;
using kernels::Matrix;
using kernels::SparseFeatureMap;

// Gram-Schmidt orthonormalization of the columns of q (n x d, row-major
// as vector<vector<double>> rows = n).
void Orthonormalize(std::vector<std::vector<double>>& q) {
  const size_t n = q.size();
  if (n == 0) return;
  const size_t d = q[0].size();
  for (size_t col = 0; col < d; ++col) {
    // Remove projections onto earlier columns.
    for (size_t prev = 0; prev < col; ++prev) {
      double dot = 0;
      for (size_t row = 0; row < n; ++row) dot += q[row][col] * q[row][prev];
      for (size_t row = 0; row < n; ++row) q[row][col] -= dot * q[row][prev];
    }
    double norm = 0;
    for (size_t row = 0; row < n; ++row) norm += q[row][col] * q[row][col];
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      for (size_t row = 0; row < n; ++row) q[row][col] = 0.0;
      continue;
    }
    for (size_t row = 0; row < n; ++row) q[row][col] /= norm;
  }
}

}  // namespace

std::vector<std::vector<double>> PpmiMatrix(
    const std::vector<std::vector<double>>& counts) {
  const size_t v = counts.size();
  double total = 0;
  std::vector<double> row_sums(v, 0.0);
  for (size_t i = 0; i < v; ++i) {
    DEEPMAP_CHECK_EQ(counts[i].size(), v);
    for (size_t j = 0; j < v; ++j) {
      row_sums[i] += counts[i][j];
      total += counts[i][j];
    }
  }
  std::vector<std::vector<double>> ppmi(v, std::vector<double>(v, 0.0));
  if (total <= 0) return ppmi;
  for (size_t i = 0; i < v; ++i) {
    for (size_t j = 0; j < v; ++j) {
      if (counts[i][j] <= 0 || row_sums[i] <= 0 || row_sums[j] <= 0) continue;
      double pmi =
          std::log(counts[i][j] * total / (row_sums[i] * row_sums[j]));
      ppmi[i][j] = std::max(0.0, pmi);
    }
  }
  return ppmi;
}

std::vector<std::vector<double>> TruncatedEigenEmbedding(
    const std::vector<std::vector<double>>& sym, int dim, int iterations,
    uint64_t seed) {
  const size_t n = sym.size();
  dim = std::min<int>(dim, static_cast<int>(n));
  DEEPMAP_CHECK_GT(dim, 0);
  Rng rng(seed);
  // q: n x dim with orthonormal columns.
  std::vector<std::vector<double>> q(n, std::vector<double>(dim));
  for (auto& row : q) {
    for (double& x : row) x = rng.Normal();
  }
  Orthonormalize(q);
  std::vector<std::vector<double>> next(n, std::vector<double>(dim, 0.0));
  for (int iter = 0; iter < iterations; ++iter) {
    for (size_t i = 0; i < n; ++i) {
      std::fill(next[i].begin(), next[i].end(), 0.0);
      for (size_t j = 0; j < n; ++j) {
        const double s = sym[i][j];
        if (s == 0.0) continue;
        for (int c = 0; c < dim; ++c) next[i][c] += s * q[j][c];
      }
    }
    q.swap(next);
    Orthonormalize(q);
  }
  // Rayleigh eigenvalues lambda_c = q_c^T M q_c; embedding = q sqrt(lambda).
  std::vector<double> lambda(dim, 0.0);
  for (int c = 0; c < dim; ++c) {
    double value = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double mi = 0;
      for (size_t j = 0; j < n; ++j) mi += sym[i][j] * q[j][c];
      value += q[i][c] * mi;
    }
    lambda[c] = std::max(0.0, value);  // clip negative directions
  }
  std::vector<std::vector<double>> embedding(n, std::vector<double>(dim));
  for (size_t i = 0; i < n; ++i) {
    for (int c = 0; c < dim; ++c) {
      embedding[i][c] = q[i][c] * std::sqrt(lambda[c]);
    }
  }
  return embedding;
}

kernels::Matrix DgkKernelMatrix(const graph::GraphDataset& dataset,
                                const DgkConfig& config) {
  const std::vector<SparseFeatureMap> maps =
      kernels::ComputeGraphFeatureMaps(dataset, config.features);

  // Vocabulary: most frequent substructures across the dataset.
  std::map<FeatureId, double> frequency;
  for (const auto& map : maps) {
    for (const auto& [id, count] : map.entries()) frequency[id] += count;
  }
  std::vector<std::pair<FeatureId, double>> ranked(frequency.begin(),
                                                   frequency.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  size_t vocab_size = ranked.size();
  if (config.max_vocabulary > 0) {
    vocab_size = std::min(vocab_size,
                          static_cast<size_t>(config.max_vocabulary));
  }
  std::map<FeatureId, int> column;
  for (size_t i = 0; i < vocab_size; ++i) column[ranked[i].first] = i;

  // Dense graph-by-substructure matrix Phi.
  const size_t n = maps.size();
  std::vector<std::vector<double>> phi(n, std::vector<double>(vocab_size, 0));
  for (size_t g = 0; g < n; ++g) {
    for (const auto& [id, count] : maps[g].entries()) {
      auto it = column.find(id);
      if (it != column.end()) phi[g][it->second] = count;
    }
  }

  // Substructure co-occurrence within graphs: C = Phi^T Phi.
  std::vector<std::vector<double>> cooc(vocab_size,
                                        std::vector<double>(vocab_size, 0));
  for (size_t g = 0; g < n; ++g) {
    for (size_t a = 0; a < vocab_size; ++a) {
      if (phi[g][a] == 0) continue;
      for (size_t b = 0; b < vocab_size; ++b) {
        if (phi[g][b] != 0) cooc[a][b] += phi[g][a] * phi[g][b];
      }
    }
  }

  const auto ppmi = PpmiMatrix(cooc);
  const auto embedding = TruncatedEigenEmbedding(
      ppmi, config.embedding_dim, config.power_iterations, config.seed);

  // K = (Phi E)(Phi E)^T: project graphs into embedding space first.
  const int d = embedding.empty() ? 0 : static_cast<int>(embedding[0].size());
  std::vector<std::vector<double>> projected(n, std::vector<double>(d, 0.0));
  for (size_t g = 0; g < n; ++g) {
    for (size_t s = 0; s < vocab_size; ++s) {
      if (phi[g][s] == 0) continue;
      for (int c = 0; c < d; ++c) {
        projected[g][c] += phi[g][s] * embedding[s][c];
      }
    }
  }
  Matrix k(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double dot = 0;
      for (int c = 0; c < d; ++c) dot += projected[i][c] * projected[j][c];
      k[i][j] = dot;
      k[j][i] = dot;
    }
  }
  kernels::NormalizeKernelMatrix(k);
  return k;
}

}  // namespace deepmap::baselines
