// ServeCluster: multi-replica serving over one hot-swappable ServableModel.
//
//   Submit(graph, options)
//     -> deadline check (expired requests rejected at admission)
//     -> shared sharded PredictionCache lookup (WL graph hash; hit resolves
//        immediately without touching any replica)
//     -> per-tenant fair-share admission: when the aggregate backlog exceeds
//        the watermark, tenants holding more than their fair share of the
//        cluster's queue capacity are shed (ResourceExhausted) so one noisy
//        tenant cannot starve the rest
//     -> join-shortest-queue dispatch into a *healthy* replica's bounded
//        queue (a Supervisor-quarantined replica receives no traffic until
//        its worker is restarted)
//     -> the replica pops its queue FIFO, runs the staged BatchPipeline with
//        continuous batching (arrivals during preprocessing join the
//        in-flight batch), and steals from the longest healthy sibling queue
//        when its own is empty.
//
// All replicas share one ServableHandle, so at any instant cluster
// predictions are bit-identical to a single InferenceEngine's on the same
// servable — which replica served a request is unobservable in its logits.
// UpdateModel() swaps the handle atomically: batches already in flight
// finish on the version they pinned at Begin, later batches pick up the new
// one, and the shared cache is cleared so no stale-version prediction is
// ever served as fresh. ModelRegistry::Subscribe + Reload wire a validated
// hot reload straight into this swap.
//
// Replicas also share one ServeMetrics (request-level stats aggregate across
// replicas), one ClusterMetrics (dispatch/steal/admit/shed counters), and
// one HealthMetrics (supervision counters), all on a single registry scrape.
//
// A Supervisor watchdog (options.supervision) detects hung/crashed workers,
// re-dispatches their requests to healthy siblings, quarantines poison
// pills, and restarts failed workers with exponential backoff — see
// serve/supervisor.h and docs/robustness.md.
//
// There is no per-cluster MicroBatcher and no max_wait_us: batching emerges
// from queue pressure. An idle replica starts on a single request
// immediately; under load, batches fill to max_batch. Shutdown drains —
// every accepted request's future is resolved before the destructor returns.
#ifndef DEEPMAP_SERVE_CLUSTER_H_
#define DEEPMAP_SERVE_CLUSTER_H_

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"
#include "serve/replica.h"
#include "serve/supervisor.h"

namespace deepmap::serve {

/// N EngineReplicas behind one dispatcher, one cache, one metrics surface,
/// one supervisor.
class ServeCluster {
 public:
  struct Options {
    size_t num_replicas = 4;
    /// Per-replica knobs (queue capacity, max_batch, pool threads,
    /// continuous batching, work stealing, degraded answers).
    EngineReplica::Options replica;
    /// Watchdog / self-healing knobs (set supervision.enabled = false to run
    /// without the background watchdog; ScanOnce still works).
    Supervisor::Options supervision;
    /// Shared prediction cache; 0 disables caching cluster-wide.
    size_t cache_capacity = 4096;
    /// WL refinement rounds for the cache key.
    int cache_wl_iterations = 2;
    /// Lock stripes of the shared cache. 0 = auto (2x replicas, so
    /// concurrent replicas rarely contend on a stripe).
    size_t cache_shards = 0;
    /// Fair-share admission arms when the aggregate backlog exceeds this
    /// fraction of aggregate queue capacity; >= 1 disables it (requests are
    /// only rejected when every queue is full).
    double fair_share_watermark = 1.0;
    /// Registry backing the shared ServeMetrics + ClusterMetrics +
    /// HealthMetrics; nullptr = private registry. Must outlive the cluster
    /// when injected.
    obs::MetricsRegistry* metrics_registry = nullptr;
  };

  ServeCluster(std::shared_ptr<ServableModel> model, const Options& options);
  /// Drains every queued request, then stops and joins all replicas. Any
  /// request stranded on a failed replica when shutdown begins is resolved
  /// with Unavailable — no promise is ever abandoned.
  ~ServeCluster();

  ServeCluster(const ServeCluster&) = delete;
  ServeCluster& operator=(const ServeCluster&) = delete;

  /// Enqueues one graph for classification on the least-loaded healthy
  /// replica.
  std::future<StatusOr<Prediction>> Submit(const graph::Graph& g,
                                           const RequestOptions& request);
  std::future<StatusOr<Prediction>> Submit(const graph::Graph& g) {
    return Submit(g, RequestOptions{});
  }

  /// Dynamic-graph serving, mirroring InferenceEngine: register a
  /// long-lived graph, then classify edge deltas against it. ClassifyDelta
  /// applies the delta incrementally, erases exactly the stale cache entry
  /// of the pre-delta structure (never Clear()), and on a cache miss runs
  /// the mutated graph through the normal dispatch path — logits are
  /// bit-identical to a fresh Submit of that graph.
  Status RegisterDynamicGraph(const std::string& id, graph::Graph g);
  Status UnregisterDynamicGraph(const std::string& id);
  StatusOr<Prediction> ClassifyDelta(
      const std::string& id, const std::vector<graph::EdgeUpdate>& updates,
      const RequestOptions& request = {});

  /// Blocks until every previously accepted request has been answered and
  /// no batch is in flight (including requests detached onto the supervisor
  /// by a replica failure). While a Drain is waiting, concurrent Submits
  /// are rejected with a typed retryable Unavailable instead of racing the
  /// drain predicate.
  void Drain();

  /// Atomically swaps the servable every subsequent batch runs against and
  /// clears the shared prediction cache (entries keyed under the old
  /// version are stale). In-flight batches finish on the version they
  /// pinned at dispatch — no request is dropped by a swap. This is the
  /// intended ModelRegistry::Subscribe callback target for hot reloads.
  void UpdateModel(std::shared_ptr<ServableModel> next);

  const ServeMetrics& metrics() const { return metrics_; }
  const ClusterMetrics& cluster_metrics() const { return cluster_metrics_; }
  const HealthMetrics& health_metrics() const { return health_metrics_; }
  const PredictionCache& cache() const { return cache_; }
  const DynamicGraphStore& dynamic_graphs() const { return dynamic_graphs_; }
  /// The servable currently receiving new batches (hot reload may retire it
  /// at any time; the shared_ptr keeps the returned version alive).
  std::shared_ptr<ServableModel> model() const { return servable_.Get(); }
  size_t num_replicas() const { return replicas_.size(); }
  const EngineReplica& replica(size_t i) const { return *replicas_[i]; }

  /// Number of Drain() calls currently blocked (test hook for the
  /// Drain-vs-Submit ordering contract).
  int draining() const;

  /// In-flight (accepted, unresolved) requests of one tenant. Test hook for
  /// the fair-share accounting; "" is the default tenant.
  int64_t tenant_inflight(const std::string& tenant) const;

  /// Test hook: route one request to a specific replica, bypassing
  /// join-shortest-queue and the health filter (fair-share admission still
  /// applies). Lets tests build skewed queues deterministically.
  std::future<StatusOr<Prediction>> SubmitToReplica(
      size_t replica, const graph::Graph& g, const RequestOptions& request);

  /// Test hooks into the supervision machinery: drive watchdog scans
  /// synchronously, flip replica health by hand.
  Supervisor& supervisor() { return *supervisor_; }
  EngineReplica* mutable_replica(size_t i) { return replicas_[i].get(); }

 private:
  /// Shared admission path; `target` < 0 means join-shortest-queue.
  /// `cache_key` empty = compute it here; `lookup_cache` false = skip the
  /// admission-time lookup but still warm the cache under the key (the
  /// ClassifyDelta miss path, which already looked the key up).
  std::future<StatusOr<Prediction>> SubmitInternal(
      const graph::Graph& g, const RequestOptions& request, int target,
      std::string cache_key = std::string(), bool lookup_cache = true);

  /// Fair-share verdict for `tenant` given the current backlog. Called with
  /// dispatch_.mu held.
  bool ShouldShedTenantLocked(const std::string& tenant) const;

  /// BatchPipeline::Hooks::on_complete: releases the request's tenant slot.
  void OnRequestComplete(const ServeRequest& request);

  ServableHandle servable_;
  Options options_;
  ServeMetrics metrics_;
  ClusterMetrics cluster_metrics_;
  HealthMetrics health_metrics_;
  PredictionCache cache_;
  /// Registered graphs for ClassifyDelta (keys at cache_wl_iterations so
  /// they collide with Submit's).
  DynamicGraphStore dynamic_graphs_;
  mutable DispatchState dispatch_;  // mutable: const accessors lock its mu

  /// Accepted-but-unresolved request counts per tenant. Guarded by
  /// dispatch_.mu (updated at admission and from on_complete).
  mutable std::unordered_map<std::string, int64_t> tenant_inflight_;

  /// Rotates the join-shortest-queue tie-break so equal-depth replicas
  /// receive round-robin traffic instead of all landing on replica 0.
  std::atomic<size_t> rr_cursor_{0};

  std::vector<std::unique_ptr<EngineReplica>> replicas_;
  std::unique_ptr<Supervisor> supervisor_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_CLUSTER_H_
