// ServeCluster: multi-replica serving over one ServableModel.
//
//   Submit(graph, options)
//     -> deadline check (expired requests rejected at admission)
//     -> shared sharded PredictionCache lookup (WL graph hash; hit resolves
//        immediately without touching any replica)
//     -> per-tenant fair-share admission: when the aggregate backlog exceeds
//        the watermark, tenants holding more than their fair share of the
//        cluster's queue capacity are shed (ResourceExhausted) so one noisy
//        tenant cannot starve the rest
//     -> join-shortest-queue dispatch into a replica's bounded queue
//     -> the replica pops its queue FIFO, runs the staged BatchPipeline with
//        continuous batching (arrivals during preprocessing join the
//        in-flight batch), and steals from the longest sibling queue when
//        its own is empty.
//
// All replicas share one immutable CompiledModel, so cluster predictions are
// bit-identical to a single InferenceEngine's — which replica served a
// request is unobservable in its logits. They also share one ServeMetrics
// (request-level stats aggregate across replicas) and one ClusterMetrics
// (dispatch/steal/admit/shed counters, per-replica batch counts), all on a
// single registry scrape.
//
// There is no per-cluster MicroBatcher and no max_wait_us: batching emerges
// from queue pressure. An idle replica starts on a single request
// immediately; under load, batches fill to max_batch. Shutdown drains —
// every accepted request's future is resolved before the destructor returns.
#ifndef DEEPMAP_SERVE_CLUSTER_H_
#define DEEPMAP_SERVE_CLUSTER_H_

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"
#include "serve/replica.h"

namespace deepmap::serve {

/// N EngineReplicas behind one dispatcher, one cache, one metrics surface.
class ServeCluster {
 public:
  struct Options {
    size_t num_replicas = 4;
    /// Per-replica knobs (queue capacity, max_batch, pool threads,
    /// continuous batching, work stealing, degraded answers).
    EngineReplica::Options replica;
    /// Shared prediction cache; 0 disables caching cluster-wide.
    size_t cache_capacity = 4096;
    /// WL refinement rounds for the cache key.
    int cache_wl_iterations = 2;
    /// Lock stripes of the shared cache. 0 = auto (2x replicas, so
    /// concurrent replicas rarely contend on a stripe).
    size_t cache_shards = 0;
    /// Fair-share admission arms when the aggregate backlog exceeds this
    /// fraction of aggregate queue capacity; >= 1 disables it (requests are
    /// only rejected when every queue is full).
    double fair_share_watermark = 1.0;
    /// Registry backing the shared ServeMetrics + ClusterMetrics; nullptr =
    /// private registry. Must outlive the cluster when injected.
    obs::MetricsRegistry* metrics_registry = nullptr;
  };

  ServeCluster(std::shared_ptr<ServableModel> model, const Options& options);
  /// Drains every queued request, then stops and joins all replicas.
  ~ServeCluster();

  ServeCluster(const ServeCluster&) = delete;
  ServeCluster& operator=(const ServeCluster&) = delete;

  /// Enqueues one graph for classification on the least-loaded replica.
  std::future<StatusOr<Prediction>> Submit(const graph::Graph& g,
                                           const RequestOptions& request);
  std::future<StatusOr<Prediction>> Submit(const graph::Graph& g) {
    return Submit(g, RequestOptions{});
  }

  /// Blocks until every previously accepted request has been answered and
  /// no batch is in flight.
  void Drain();

  const ServeMetrics& metrics() const { return metrics_; }
  const ClusterMetrics& cluster_metrics() const { return cluster_metrics_; }
  const PredictionCache& cache() const { return cache_; }
  const ServableModel& model() const { return *model_; }
  size_t num_replicas() const { return replicas_.size(); }
  const EngineReplica& replica(size_t i) const { return *replicas_[i]; }

  /// In-flight (accepted, unresolved) requests of one tenant. Test hook for
  /// the fair-share accounting; "" is the default tenant.
  int64_t tenant_inflight(const std::string& tenant) const;

  /// Test hook: route one request to a specific replica, bypassing
  /// join-shortest-queue (fair-share admission still applies). Lets tests
  /// build skewed queues deterministically.
  std::future<StatusOr<Prediction>> SubmitToReplica(
      size_t replica, const graph::Graph& g, const RequestOptions& request);

 private:
  /// Shared admission path; `target` < 0 means join-shortest-queue.
  std::future<StatusOr<Prediction>> SubmitInternal(
      const graph::Graph& g, const RequestOptions& request, int target);

  /// Fair-share verdict for `tenant` given the current backlog. Called with
  /// dispatch_.mu held.
  bool ShouldShedTenantLocked(const std::string& tenant) const;

  /// BatchPipeline::Hooks::on_complete: releases the request's tenant slot.
  void OnRequestComplete(const ServeRequest& request);

  std::shared_ptr<ServableModel> model_;
  Options options_;
  ServeMetrics metrics_;
  ClusterMetrics cluster_metrics_;
  PredictionCache cache_;
  mutable DispatchState dispatch_;  // mutable: const accessors lock its mu

  /// Accepted-but-unresolved request counts per tenant. Guarded by
  /// dispatch_.mu (updated at admission and from on_complete).
  mutable std::unordered_map<std::string, int64_t> tenant_inflight_;

  /// Rotates the join-shortest-queue tie-break so equal-depth replicas
  /// receive round-robin traffic instead of all landing on replica 0.
  std::atomic<size_t> rr_cursor_{0};

  std::vector<std::unique_ptr<EngineReplica>> replicas_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_CLUSTER_H_
