// Inference-only "compiled" form of a trained DeepMapModel.
//
// The training-path layers (nn::Conv1D etc.) cache activations for Backward
// on every Forward call, allocate a fresh tensor per layer, and compute all
// w sequence slots even though DEEPMAP inputs are zero-padded to the
// dataset-wide maximum vertex count. None of that is needed to serve
// predictions, so the registry compiles the parameters into a flat,
// immutable weight bundle with a forward pass that
//   - skips zero input rows (dummy receptive-field slots and padding rows
//     contribute nothing beyond the bias),
//   - routes fully-empty vertex slots through a precomputed constant
//     activation chain (bias -> ReLU -> pointwise convs), so per-graph cost
//     scales with the actual vertex count n instead of w,
//   - reuses caller-provided scratch buffers (no per-sample allocation).
//
// Kernel execution is delegated to an nn::InferenceBackend chosen at Compile
// time: weights are packed once through InferenceBackend::Pack and every dot
// product in the forward pass runs through the backend's primitives. With
// the default nn::Fp32Backend() the evaluation order mirrors the training
// layers exactly, so compiled logits are bit-identical to
// DeepMapModel::Forward(.., false); quantized backends (nn::Int8Backend)
// trade bounded rounding for throughput and are guarded by the registry's
// calibration harness (see serve/model_registry.h).
//
// CompiledModel is immutable after Compile and safe to share across threads.
#ifndef DEEPMAP_SERVE_COMPILED_MODEL_H_
#define DEEPMAP_SERVE_COMPILED_MODEL_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/deepmap.h"
#include "nn/inference_backend.h"
#include "nn/tensor.h"

namespace deepmap::serve {

/// Provenance of a served answer. Anything other than kModel means the
/// engine degraded gracefully instead of surfacing a model-path failure.
enum class PredictionSource : uint8_t {
  kModel = 0,       // full forward pass (possibly replayed from the cache)
  kStaleCache = 1,  // degraded: cached answer served while the model failed
  kFallback = 2,    // degraded: reference-dataset majority-class prior
};

/// A served classification: argmax class plus the softmax distribution.
struct Prediction {
  int label = -1;
  std::vector<float> probabilities;  // size C, sums to ~1
  PredictionSource source = PredictionSource::kModel;
};

/// Reusable per-thread forward-pass workspace.
struct ForwardScratch {
  std::vector<float> h1, h2, h3;  // per-slot conv activations
  std::vector<float> readout;     // pooled / concatenated representation
  std::vector<float> hidden;      // dense hidden activations
  std::vector<float> logits;      // final class scores
};

/// Flat immutable weights + architecture dims of one DEEPMAP network.
/// Move-only: the packed weight bundle is owned exclusively.
class CompiledModel {
 public:
  /// Snapshots `model`'s parameters, packed for `backend` (nullptr selects
  /// the exact-fp32 nn::Fp32Backend()). Validates that the parameter list
  /// has the expected layer structure for (config, feature_dim,
  /// sequence_length, num_classes); returns InvalidArgument on any shape
  /// mismatch. `backend` must outlive the compiled model.
  static StatusOr<CompiledModel> Compile(
      core::DeepMapModel& model, const core::DeepMapConfig& config,
      int feature_dim, int sequence_length, int num_classes,
      const nn::InferenceBackend* backend = nullptr);

  CompiledModel(CompiledModel&&) = default;
  CompiledModel& operator=(CompiledModel&&) = default;

  int feature_dim() const { return m_; }
  int sequence_length() const { return w_; }
  int num_classes() const { return num_classes_; }
  int receptive_field_size() const { return r_; }

  /// Name of the backend executing this model's forward pass.
  const char* backend_name() const { return backend_->name(); }

  /// Resident bytes of all packed weight matrices (bench/inspection).
  size_t PackedWeightBytes() const;

  /// Classifies one preprocessed input of shape [w*r, m]. Thread-safe; pass
  /// a distinct `scratch` per calling thread.
  Prediction Predict(const nn::Tensor& input, ForwardScratch* scratch) const;

  /// Raw class scores (pre-softmax) for equivalence checks; written into
  /// scratch->logits and returned as a tensor copy.
  nn::Tensor Logits(const nn::Tensor& input, ForwardScratch* scratch) const;

  /// Classifies inputs[begin, end) into predictions[begin, end). Designed to
  /// be sharded across ThreadPool workers; one scratch per shard.
  void PredictRange(const std::vector<nn::Tensor>& inputs, size_t begin,
                    size_t end, ForwardScratch* scratch,
                    std::vector<Prediction>* predictions) const;

 private:
  CompiledModel() = default;

  /// Runs the conv stack + readout + dense head; leaves logits in
  /// scratch->logits.
  void ForwardInto(const nn::Tensor& input, ForwardScratch* scratch) const;

  int m_ = 0;            // vertex feature dimension
  int w_ = 0;            // sequence length (max vertices)
  int r_ = 0;            // receptive field size
  int c1_ = 0, c2_ = 0, c3_ = 0;
  int dense_units_ = 0;
  int num_classes_ = 0;
  int readout_dim_ = 0;
  core::ReadoutKind readout_ = core::ReadoutKind::kSum;

  // Kernel execution strategy; points at nn::Fp32Backend() or at a backend
  // owned by the surrounding ServableModel.
  const nn::InferenceBackend* backend_ = nullptr;

  // Weights packed by backend_; biases stay fp32 (they seed accumulators in
  // every backend). Training layouts: conv1 [c1, r*m], conv2 [c2, c1],
  // conv3 [c3, c2], dense1 [dense, readout_dim], dense2 [C, dense].
  std::unique_ptr<nn::PackedWeights> conv1_p_, conv2_p_, conv3_p_;
  std::unique_ptr<nn::PackedWeights> dense1_p_, dense2_p_;
  nn::Tensor conv1_b_, conv2_b_, conv3_b_, dense1_b_, dense2_b_;

  // Activations an all-zero (dummy/padding) slot produces after each
  // conv+ReLU; computed once at Compile time through the same backend.
  std::vector<float> dummy1_, dummy2_, dummy3_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_COMPILED_MODEL_H_
