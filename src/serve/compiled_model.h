// Inference-only "compiled" form of a trained DeepMapModel.
//
// The training-path layers (nn::Conv1D etc.) cache activations for Backward
// on every Forward call, allocate a fresh tensor per layer, and compute all
// w sequence slots even though DEEPMAP inputs are zero-padded to the
// dataset-wide maximum vertex count. None of that is needed to serve
// predictions, so the registry compiles the parameters into a flat,
// immutable weight bundle with a forward pass that
//   - skips zero input rows (dummy receptive-field slots and padding rows
//     contribute nothing beyond the bias),
//   - routes fully-empty vertex slots through a precomputed constant
//     activation chain (bias -> ReLU -> pointwise convs), so per-graph cost
//     scales with the actual vertex count n instead of w,
//   - reuses caller-provided scratch buffers (no per-sample allocation).
// Floating-point evaluation order mirrors the training layers exactly, so
// compiled logits are bit-identical to DeepMapModel::Forward(.., false).
//
// CompiledModel is immutable after Compile and safe to share across threads.
#ifndef DEEPMAP_SERVE_COMPILED_MODEL_H_
#define DEEPMAP_SERVE_COMPILED_MODEL_H_

#include <vector>

#include "common/status.h"
#include "core/deepmap.h"
#include "nn/tensor.h"

namespace deepmap::serve {

/// Provenance of a served answer. Anything other than kModel means the
/// engine degraded gracefully instead of surfacing a model-path failure.
enum class PredictionSource : uint8_t {
  kModel = 0,       // full forward pass (possibly replayed from the cache)
  kStaleCache = 1,  // degraded: cached answer served while the model failed
  kFallback = 2,    // degraded: reference-dataset majority-class prior
};

/// A served classification: argmax class plus the softmax distribution.
struct Prediction {
  int label = -1;
  std::vector<float> probabilities;  // size C, sums to ~1
  PredictionSource source = PredictionSource::kModel;
};

/// Reusable per-thread forward-pass workspace.
struct ForwardScratch {
  std::vector<float> h1, h2, h3;  // per-slot conv activations
  std::vector<float> readout;     // pooled / concatenated representation
  std::vector<float> hidden;      // dense hidden activations
  std::vector<float> logits;      // final class scores
};

/// Flat immutable weights + architecture dims of one DEEPMAP network.
class CompiledModel {
 public:
  /// Snapshots `model`'s parameters. Validates that the parameter list has
  /// the expected layer structure for (config, feature_dim, sequence_length,
  /// num_classes); returns InvalidArgument on any shape mismatch.
  static StatusOr<CompiledModel> Compile(core::DeepMapModel& model,
                                         const core::DeepMapConfig& config,
                                         int feature_dim, int sequence_length,
                                         int num_classes);

  int feature_dim() const { return m_; }
  int sequence_length() const { return w_; }
  int num_classes() const { return num_classes_; }
  int receptive_field_size() const { return r_; }

  /// Classifies one preprocessed input of shape [w*r, m]. Thread-safe; pass
  /// a distinct `scratch` per calling thread.
  Prediction Predict(const nn::Tensor& input, ForwardScratch* scratch) const;

  /// Raw class scores (pre-softmax) for equivalence checks; written into
  /// scratch->logits and returned as a tensor copy.
  nn::Tensor Logits(const nn::Tensor& input, ForwardScratch* scratch) const;

  /// Classifies inputs[begin, end) into predictions[begin, end). Designed to
  /// be sharded across ThreadPool workers; one scratch per shard.
  void PredictRange(const std::vector<nn::Tensor>& inputs, size_t begin,
                    size_t end, ForwardScratch* scratch,
                    std::vector<Prediction>* predictions) const;

 private:
  CompiledModel() = default;

  /// Runs the conv stack + readout + dense head; leaves logits in
  /// scratch->logits.
  void ForwardInto(const nn::Tensor& input, ForwardScratch* scratch) const;

  int m_ = 0;            // vertex feature dimension
  int w_ = 0;            // sequence length (max vertices)
  int r_ = 0;            // receptive field size
  int c1_ = 0, c2_ = 0, c3_ = 0;
  int dense_units_ = 0;
  int num_classes_ = 0;
  int readout_dim_ = 0;
  core::ReadoutKind readout_ = core::ReadoutKind::kSum;

  // Weight snapshots, in the training layout (see nn/conv1d.h, nn/dense.h).
  nn::Tensor conv1_w_, conv1_b_;  // [c1, r*m], [c1]
  nn::Tensor conv2_w_, conv2_b_;  // [c2, c1], [c2]
  nn::Tensor conv3_w_, conv3_b_;  // [c3, c2], [c3]
  nn::Tensor dense1_w_, dense1_b_;  // [dense, readout_dim], [dense]
  nn::Tensor dense2_w_, dense2_b_;  // [C, dense], [C]

  // Activations an all-zero (dummy/padding) slot produces after each
  // conv+ReLU; computed once at Compile time.
  std::vector<float> dummy1_, dummy2_, dummy3_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_COMPILED_MODEL_H_
