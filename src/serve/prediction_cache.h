// Sharded, lock-striped LRU prediction cache keyed by a WL-refinement graph
// hash.
//
// Serving traffic is heavy on resubmissions (the same molecule screened
// twice, the same ego network re-ranked). The cache key is (|V|, |E|, WL
// color-multiset fingerprint); a warm hit skips preprocessing and the
// forward pass entirely. All graphs sharing a key — isomorphic re-labelings
// and, more generally, graphs 1-WL cannot separate — are served from one
// entry: the prediction of the first such graph classified. That is the
// intended semantics for screening workloads (a resubmitted compound is the
// same compound), but it is an approximation: DEEPMAP's centrality
// alignment breaks ties by vertex id, so a permuted copy of a graph can map
// to a slightly different input tensor than the cached representative did.
// Disable the cache (capacity 0) when exact per-submission outputs matter.
//
// Concurrency: the key space is hash-partitioned into `num_shards` shards,
// each a self-contained LRU (list + index + hit/miss/eviction counters)
// behind its own mutex. Lookups and inserts for different shards never
// contend, which is what lets one cache be shared by every replica of a
// ServeCluster; a single-shard cache (the default constructor) degenerates
// to the original global-lock LRU with one process-wide recency order.
// Capacity is split exactly across shards — every shard gets
// floor(capacity / num_shards) slots and the first capacity % num_shards
// shards one extra — so the per-shard capacities always sum to `capacity`.
// (The previous ceil-division split handed every shard the rounded-up
// quota, letting the cache hold up to num_shards - 1 entries more than
// configured.) num_shards is clamped to capacity (when nonzero), so no
// shard is ever allotted zero slots — a zero-slot shard would silently
// never cache its slice of the key space. Eviction is a per-shard
// decision: the recency order is exact within a shard and approximate
// globally.
//
// When a MetricsRegistry is supplied, every shard exports its counters as
//   deepmap_serve_cache_shard<i>_hits_total
//   deepmap_serve_cache_shard<i>_misses_total
//   deepmap_serve_cache_shard<i>_evictions_total
// so a scrape shows striping balance, not just aggregates.
//
// All operations are O(1) amortized and take exactly one shard mutex.
#ifndef DEEPMAP_SERVE_PREDICTION_CACHE_H_
#define DEEPMAP_SERVE_PREDICTION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "obs/metrics.h"
#include "serve/compiled_model.h"

namespace deepmap::serve {

/// Thread-safe sharded LRU map from graph hash to Prediction.
class PredictionCache {
 public:
  /// `capacity` == 0 disables the cache (every Lookup misses). `num_shards`
  /// is clamped to [1, max(capacity, 1)] so every shard owns at least one
  /// slot; per-shard capacities sum exactly to `capacity`.
  /// When `registry` is non-null (it must outlive the cache), per-shard
  /// hit/miss/eviction counters are registered on it.
  explicit PredictionCache(size_t capacity, size_t num_shards = 1,
                           obs::MetricsRegistry* registry = nullptr);

  /// Cache key: "n:m:<wl hash fingerprint>". `wl_iterations` trades key
  /// cost for resolution; isomorphic graphs always collide, WL-equivalent
  /// graphs too. Built on WlHashFingerprint (not WlFingerprint) so the
  /// dynamic-graph path can maintain the same key incrementally.
  static std::string KeyFor(const graph::Graph& g, int wl_iterations);

  /// Assembles the key KeyFor would produce from an already-computed
  /// fingerprint (the DynamicGraph path, which never rehashes from
  /// scratch).
  static std::string KeyFromFingerprint(int num_vertices, int64_t num_edges,
                                        const std::string& fingerprint);

  /// The shard `key` stripes onto (stable for the cache's lifetime).
  size_t ShardIndexFor(const std::string& key) const;

  /// Returns the cached prediction and refreshes its recency, or nullopt.
  std::optional<Prediction> Lookup(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// of its shard when that shard is at capacity. No-op when disabled.
  void Insert(const std::string& key, Prediction prediction);

  /// Removes exactly `key` from its shard, if present. Returns whether an
  /// entry was dropped. This is the surgical alternative to Clear() for
  /// dynamic-graph updates: only the stale entry of the mutated graph is
  /// invalidated, every other cached prediction stays warm.
  bool Erase(const std::string& key);

  /// Drops every entry in every shard. Hit/miss/eviction counters are
  /// preserved (they describe traffic, not contents). Used on hot model
  /// swap: cached predictions belong to the replaced model version.
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  /// Largest per-shard capacity (shard 0's; shards differ by at most one).
  size_t shard_capacity() const { return shards_[0]->capacity; }
  /// Capacity of one specific shard.
  size_t shard_capacity(size_t shard) const {
    return shards_[shard]->capacity;
  }

  /// Aggregates over all shards.
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;

  /// Per-shard counters (for tests and striping diagnostics).
  int64_t shard_hits(size_t shard) const;
  int64_t shard_misses(size_t shard) const;
  int64_t shard_evictions(size_t shard) const;
  size_t shard_size(size_t shard) const;

  /// Keys in most-recently-used-first order within each shard, shards
  /// concatenated in index order. With one shard this is the exact global
  /// recency order (what the LRU tests pin).
  std::vector<std::string> KeysByRecency() const;

 private:
  using Entry = std::pair<std::string, Prediction>;

  /// One lock stripe: an independent LRU over its slice of the key space.
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 0;  // this shard's slice of the configured total
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    // Registry mirrors of the counters above; null without a registry.
    obs::Counter* hits_counter = nullptr;
    obs::Counter* misses_counter = nullptr;
    obs::Counter* evictions_counter = nullptr;
  };

  const size_t capacity_;  // configured total == sum of shard capacities
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_PREDICTION_CACHE_H_
