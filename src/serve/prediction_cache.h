// LRU prediction cache keyed by a WL-refinement graph hash.
//
// Serving traffic is heavy on resubmissions (the same molecule screened
// twice, the same ego network re-ranked). The cache key is (|V|, |E|, WL
// color-multiset fingerprint); a warm hit skips preprocessing and the
// forward pass entirely. All graphs sharing a key — isomorphic re-labelings
// and, more generally, graphs 1-WL cannot separate — are served from one
// entry: the prediction of the first such graph classified. That is the
// intended semantics for screening workloads (a resubmitted compound is the
// same compound), but it is an approximation: DEEPMAP's centrality
// alignment breaks ties by vertex id, so a permuted copy of a graph can map
// to a slightly different input tensor than the cached representative did.
// Disable the cache (capacity 0) when exact per-submission outputs matter.
//
// All operations are O(1) amortized and guarded by one internal mutex.
#ifndef DEEPMAP_SERVE_PREDICTION_CACHE_H_
#define DEEPMAP_SERVE_PREDICTION_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "serve/compiled_model.h"

namespace deepmap::serve {

/// Thread-safe LRU map from graph hash to Prediction.
class PredictionCache {
 public:
  /// `capacity` == 0 disables the cache (every Lookup misses).
  explicit PredictionCache(size_t capacity);

  /// Cache key: "n:m:<wl fingerprint>". `wl_iterations` trades key cost for
  /// resolution; isomorphic graphs always collide, WL-equivalent graphs too.
  static std::string KeyFor(const graph::Graph& g, int wl_iterations);

  /// Returns the cached prediction and refreshes its recency, or nullopt.
  std::optional<Prediction> Lookup(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// when at capacity. No-op when disabled.
  void Insert(const std::string& key, Prediction prediction);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;

  /// Most-recently-used first key order (for tests).
  std::vector<std::string> KeysByRecency() const;

 private:
  using Entry = std::pair<std::string, Prediction>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_PREDICTION_CACHE_H_
