#include "serve/supervisor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace deepmap::serve {

Supervisor::Supervisor(
    const Options& options,
    const std::vector<std::unique_ptr<EngineReplica>>* replicas,
    DispatchState* dispatch, ServableHandle* servable, ServeMetrics* metrics,
    HealthMetrics* health,
    std::function<void(const ServeRequest&)> on_complete)
    : options_(options),
      replicas_(replicas),
      dispatch_(dispatch),
      servable_(servable),
      metrics_(metrics),
      health_(health),
      on_complete_(std::move(on_complete)),
      watches_(replicas->size()) {
  DEEPMAP_CHECK(replicas_ != nullptr);
  DEEPMAP_CHECK(dispatch_ != nullptr);
  DEEPMAP_CHECK(servable_ != nullptr);
  DEEPMAP_CHECK(metrics_ != nullptr);
  DEEPMAP_CHECK(health_ != nullptr);
  DEEPMAP_CHECK_GE(options_.max_request_failures, 0);
}

Supervisor::~Supervisor() { Stop(); }

void Supervisor::Start() {
  if (!options_.enabled) return;
  DEEPMAP_CHECK(!thread_.joinable());
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { Run(); });
}

void Supervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
    stop_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void Supervisor::Run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(lock, options_.check_interval,
                        [this] { return stop_; });
      if (stop_) return;
    }
    ScanOnce();
  }
}

void Supervisor::ScanOnce() {
  std::lock_guard<std::mutex> scan_lock(scan_mu_);
  {
    // A shutting-down cluster retires its workers on purpose; their exits
    // are not crashes and their backlog is the destructor sweep's problem.
    std::lock_guard<std::mutex> lock(dispatch_->mu);
    if (dispatch_->stopping) return;
  }
  for (size_t i = 0; i < replicas_->size(); ++i) {
    ScanReplica((*replicas_)[i].get(), &watches_[i]);
  }
}

void Supervisor::ScanReplica(EngineReplica* replica, Watch* watch) {
  const auto now = std::chrono::steady_clock::now();

  if (watch->awaiting_restart) {
    // Backoff window. The restart additionally waits for the failed worker
    // thread to actually exit (a hung worker only exits once its stall is
    // abandoned), so Restart()'s join cannot block the scan loop.
    if (now < watch->restart_at || !replica->worker_exited()) return;
    replica->Restart();
    replica->set_health(ReplicaHealth::kHealthy);
    watch->awaiting_restart = false;
    health_->AddUnhealthy(-1);
    health_->RecordRestart(replica->index());
    DEEPMAP_LOG(Info) << "supervisor: restarted replica " << replica->index()
                      << " (failure #" << watch->consecutive_failures << ")";
    // The rejoined replica must notice any backlog that piled up on its
    // siblings while it was down.
    std::lock_guard<std::mutex> lock(dispatch_->mu);
    dispatch_->work_cv.notify_all();
    return;
  }

  // Failure detection. Crash: the worker thread exited while the cluster is
  // live. Hang: the in-flight batch sat parked past the timeout — verified
  // by the confiscation itself, so a worker that claims the batch between
  // the timeout check and the confiscation produces a stand-down, not a
  // false positive.
  const bool crashed = replica->worker_exited();
  std::vector<ServeRequest> recovered;
  if (crashed) {
    recovered = replica->ConfiscateParkedBatch();
  } else {
    const auto parked = replica->parked_for();
    if (parked < options_.hang_timeout) return;
    recovered = replica->ConfiscateParkedBatch();
    if (recovered.empty()) return;  // worker claimed it first; stand down
  }
  const bool had_batch = !recovered.empty();

  replica->set_health(ReplicaHealth::kUnhealthy);
  health_->AddUnhealthy(1);
  if (crashed) {
    health_->RecordCrash();
  } else {
    health_->RecordHang();
  }
  // Release a worker parked on the simulated stall: it will find its batch
  // confiscated and exit, satisfying the worker_exited() restart gate.
  replica->AbandonStall();

  std::vector<ServeRequest> queued = replica->DrainQueue();
  const int64_t confiscated = static_cast<int64_t>(recovered.size());
  const int64_t dequeued = static_cast<int64_t>(queued.size());
  {
    std::lock_guard<std::mutex> lock(dispatch_->mu);
    // The confiscated batch was counted as an active batch by the worker
    // that popped it; it will never complete, so the count is repaired
    // here. The drained queue entries were still `pending`. Both move into
    // `detached` until Redispatch re-enqueues or resolves them.
    if (had_batch) --dispatch_->active_batches;
    dispatch_->pending -= dequeued;
    dispatch_->detached += confiscated + dequeued;
  }
  for (ServeRequest& r : queued) recovered.push_back(std::move(r));

  ++watch->consecutive_failures;
  DEEPMAP_LOG(Warning) << "supervisor: replica " << replica->index()
                       << (crashed ? " crashed" : " hung") << "; recovering "
                       << recovered.size() << " request(s), restart in "
                       << BackoffFor(watch->consecutive_failures).count()
                       << "ms";
  Redispatch(std::move(recovered), replica->index());
  watch->awaiting_restart = true;
  watch->restart_at = now + BackoffFor(watch->consecutive_failures);
}

void Supervisor::Redispatch(std::vector<ServeRequest>&& recovered,
                            size_t from) {
  std::vector<ServeRequest> quarantined;
  std::vector<ServeRequest> rejected;
  int64_t redispatched = 0;
  {
    std::lock_guard<std::mutex> lock(dispatch_->mu);
    for (ServeRequest& request : recovered) {
      ++request.failures;
      if (request.failures > options_.max_request_failures) {
        quarantined.push_back(std::move(request));
        continue;
      }
      // Shortest healthy queue, the failed replica excluded (it is already
      // kUnhealthy, but exclude by index too for clarity).
      EngineReplica* target = nullptr;
      size_t shortest = std::numeric_limits<size_t>::max();
      for (const auto& sibling : *replicas_) {
        if (sibling->index() == from) continue;
        if (sibling->health() != ReplicaHealth::kHealthy) continue;
        const size_t d = sibling->depth();
        if (d < shortest) {
          shortest = d;
          target = sibling.get();
        }
      }
      if (target != nullptr && target->TryEnqueue(std::move(request))) {
        ++dispatch_->pending;
        --dispatch_->detached;
        ++redispatched;
      } else {
        // TryEnqueue leaves the request untouched on failure, so it is
        // still ours to reject.
        rejected.push_back(std::move(request));
      }
    }
    if (redispatched > 0) dispatch_->work_cv.notify_all();
  }
  if (redispatched > 0) health_->RecordRedispatched(redispatched);

  // Quarantines and rejections are resolved OUTSIDE the dispatch lock: the
  // completion hook re-enters it for per-tenant accounting.
  int64_t resolved = 0;
  if (!quarantined.empty()) {
    const std::shared_ptr<ServableModel> model = servable_->Get();
    for (ServeRequest& request : quarantined) {
      health_->RecordQuarantined();
      metrics_->RecordDegradedFallback();
      request.promise.set_value(model->fallback_prediction());
      if (on_complete_) on_complete_(request);
      ++resolved;
    }
  }
  for (ServeRequest& request : rejected) {
    metrics_->RecordRejected();
    request.promise.set_value(StatusOr<Prediction>(Status::ResourceExhausted(
        "no healthy replica available to re-dispatch request")));
    if (on_complete_) on_complete_(request);
    ++resolved;
  }
  if (resolved > 0) {
    std::lock_guard<std::mutex> lock(dispatch_->mu);
    dispatch_->detached -= resolved;
    if (dispatch_->pending == 0 && dispatch_->active_batches == 0 &&
        dispatch_->detached == 0) {
      dispatch_->drain_cv.notify_all();
    }
  }
}

std::chrono::milliseconds Supervisor::BackoffFor(
    int consecutive_failures) const {
  const double factor = std::pow(options_.restart_backoff_multiplier,
                                 std::max(0, consecutive_failures - 1));
  const double raw = static_cast<double>(
                         options_.restart_backoff_initial.count()) *
                     factor;
  const double capped = std::min(
      raw, static_cast<double>(options_.restart_backoff_max.count()));
  return std::chrono::milliseconds(static_cast<int64_t>(capped));
}

}  // namespace deepmap::serve
