// Serving observability: per-stage latency histograms, batch-size
// distribution, queue depth, and prediction-cache hit rate.
//
// One ServeMetrics instance is shared by the submit path (any thread), the
// batch dispatcher, and the reporting code, so every mutator is guarded by a
// single internal mutex; recording is a handful of pushes/increments and is
// far cheaper than a forward pass. Percentiles are computed on demand from
// the retained samples (capped, see kMaxLatencySamples).
#ifndef DEEPMAP_SERVE_METRICS_H_
#define DEEPMAP_SERVE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.h"

namespace deepmap::serve {

/// Order statistics of one latency series (all values in microseconds).
struct LatencySummary {
  int64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Final disposition of one submitted request (one outcome is recorded per
/// Submit attempt, so the outcome counters always sum to the number of
/// submissions — the invariant the robustness tests pin).
enum class ServeOutcome : int {
  kOk = 0,               // answered by the model (or a warm cache hit)
  kDegraded,             // answered stale-from-cache or by the fallback
  kShed,                 // dropped by admission control under overload
  kDeadlineExceeded,     // deadline passed (any stage)
  kRejected,             // enqueue failed (queue full / shutdown / injected)
  kError,                // any other error surfaced on the future
};
inline constexpr int kNumServeOutcomes = 6;

/// Timings of one served request, in microseconds. A cache hit records
/// preprocess_us == forward_us == 0 (the whole pipeline was skipped), which
/// is how tests verify that hits bypass preprocessing.
struct RequestTiming {
  double queue_us = 0.0;       // submit -> batch dispatch
  double preprocess_us = 0.0;  // feature map -> alignment -> tensor
  double forward_us = 0.0;     // batched CNN forward
  double total_us = 0.0;       // submit -> promise fulfilled
  bool cache_hit = false;
};

/// Thread-safe metrics sink for the inference engine.
class ServeMetrics {
 public:
  /// Retained samples per stage; later samples beyond the cap only update
  /// count/mean/max.
  static constexpr size_t kMaxLatencySamples = 1 << 20;

  void RecordRequest(const RequestTiming& timing);
  void RecordBatch(int batch_size);
  void RecordQueueDepth(size_t depth);
  /// Also counts the ServeOutcome::kRejected outcome.
  void RecordRejected();

  /// Successful / failed dispositions not covered by the helpers above.
  void RecordOutcome(ServeOutcome outcome);
  /// Admission-control drop; also counts the kShed outcome.
  void RecordShed();
  /// Deadline expiry with stage attribution ("admission", "preprocess",
  /// "forward"); also counts the kDeadlineExceeded outcome.
  void RecordDeadlineExceeded(const std::string& stage);
  /// Degraded answers; both also count the kDegraded outcome.
  void RecordDegradedStale();
  void RecordDegradedFallback();
  /// One backoff-and-resubmit cycle inside Classify.
  void RecordRetry();

  /// Stage summaries; `stage` is one of "queue", "preprocess", "forward",
  /// "total". Cache hits are excluded from the queue/preprocess/forward
  /// series (they never enter those stages) but included in "total".
  LatencySummary Latency(const std::string& stage) const;

  int64_t requests() const;
  int64_t cache_hits() const;
  int64_t cache_misses() const;
  int64_t rejected() const;
  double cache_hit_rate() const;  // hits / (hits + misses), 0 when empty

  int64_t outcome_count(ServeOutcome outcome) const;
  /// Sum over every outcome == number of Submit attempts that resolved.
  int64_t total_outcomes() const;
  int64_t shed() const;
  int64_t deadline_exceeded() const;  // all stages
  int64_t deadline_exceeded(const std::string& stage) const;
  int64_t degraded() const;  // stale + fallback
  int64_t degraded_stale() const;
  int64_t degraded_fallback() const;
  int64_t retries() const;

  int64_t num_batches() const;
  double mean_batch_size() const;
  /// batch size -> number of batches dispatched at that size.
  std::map<int, int64_t> batch_size_histogram() const;

  size_t max_queue_depth() const;
  double mean_queue_depth() const;

  /// Number of requests that actually ran a given stage (preprocess count ==
  /// cache misses when every miss is preprocessed exactly once).
  int64_t stage_count(const std::string& stage) const;

  /// "stage | count | p50 | p95 | p99 | mean | max" rows.
  Table LatencyTable() const;
  /// Throughput / cache / batch / queue counters as name-value rows.
  Table SummaryTable() const;

  /// Prints both tables.
  void Print(std::ostream& os) const;

 private:
  struct Series {
    std::vector<double> samples;
    int64_t count = 0;
    double sum = 0.0;
    double max = 0.0;

    void Record(double value);
    LatencySummary Summarize() const;
  };

  const Series* SeriesFor(const std::string& stage) const;

  mutable std::mutex mu_;
  Series queue_;
  Series preprocess_;
  Series forward_;
  Series total_;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t rejected_ = 0;
  int64_t outcomes_[kNumServeOutcomes] = {};
  std::map<std::string, int64_t> deadline_stages_;
  int64_t degraded_stale_ = 0;
  int64_t degraded_fallback_ = 0;
  int64_t retries_ = 0;
  std::map<int, int64_t> batch_sizes_;
  int64_t batch_count_ = 0;
  int64_t batch_item_total_ = 0;
  size_t max_queue_depth_ = 0;
  double queue_depth_sum_ = 0.0;
  int64_t queue_depth_samples_ = 0;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_METRICS_H_
