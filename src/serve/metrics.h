// Serving observability: per-stage latency, batch-size distribution, queue
// depth, cache hit rate, and request outcomes.
//
// ServeMetrics sits on top of an obs::MetricsRegistry: every scalar count
// (requests, outcomes, cache, batches, retries) is a registry counter and
// every stage latency feeds a registry histogram, so the whole surface is
// lock-free on the record path and exportable as one Prometheus scrape
// (registry()). The only mutex-guarded state left is the retained raw-sample
// store, which exists to serve *exact* order statistics — registry
// histograms answer percentile queries from fixed buckets (interpolated,
// within a few percent); the sample store answers them exactly, and tests
// pin the two against each other.
//
// By default each ServeMetrics owns a private registry, so engines in the
// same process (e.g. test fixtures) never share counters; pass an external
// registry to aggregate several engines into one scrape.
#ifndef DEEPMAP_SERVE_METRICS_H_
#define DEEPMAP_SERVE_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"

namespace deepmap::serve {

/// Order statistics of one latency series (all values in microseconds).
struct LatencySummary {
  int64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Nearest-rank index of quantile `q` in a sorted sample of size `n`:
/// ceil(q*n) - 1, clamped to [0, n-1], with an epsilon guard so inexact
/// doubles (0.95 * 20 is slightly above 19 in binary) cannot push the rank
/// one past the mathematical answer. Exposed for the regression tests.
size_t NearestRankIndex(size_t n, double q);

/// Final disposition of one submitted request (one outcome is recorded per
/// Submit attempt, so the outcome counters always sum to the number of
/// submissions — the invariant the robustness tests pin).
enum class ServeOutcome : int {
  kOk = 0,               // answered by the model (or a warm cache hit)
  kDegraded,             // answered stale-from-cache or by the fallback
  kShed,                 // dropped by admission control under overload
  kDeadlineExceeded,     // deadline passed (any stage)
  kRejected,             // enqueue failed (queue full / shutdown / injected)
  kError,                // any other error surfaced on the future
};
inline constexpr int kNumServeOutcomes = 6;

/// Timings of one served request, in microseconds. A cache hit records
/// preprocess_us == forward_us == 0 (the whole pipeline was skipped), which
/// is how tests verify that hits bypass preprocessing.
struct RequestTiming {
  double queue_us = 0.0;       // submit -> batch dispatch
  double preprocess_us = 0.0;  // feature map -> alignment -> tensor
  double forward_us = 0.0;     // batched CNN forward
  double total_us = 0.0;       // submit -> promise fulfilled
  bool cache_hit = false;
};

/// Thread-safe metrics sink for the inference engine.
class ServeMetrics {
 public:
  /// Retained samples per stage; later samples beyond the cap only update
  /// the registry instruments (count/mean/max stay exact).
  static constexpr size_t kMaxLatencySamples = 1 << 20;

  /// `registry` must outlive this object; nullptr = own a private registry.
  explicit ServeMetrics(obs::MetricsRegistry* registry = nullptr);

  void RecordRequest(const RequestTiming& timing);
  void RecordBatch(int batch_size);
  void RecordQueueDepth(size_t depth);
  /// Also counts the ServeOutcome::kRejected outcome.
  void RecordRejected();

  /// Successful / failed dispositions not covered by the helpers above.
  void RecordOutcome(ServeOutcome outcome);
  /// Admission-control drop; also counts the kShed outcome.
  void RecordShed();
  /// Deadline expiry with stage attribution ("admission", "preprocess",
  /// "forward"); also counts the kDeadlineExceeded outcome.
  void RecordDeadlineExceeded(const std::string& stage);
  /// Degraded answers; both also count the kDegraded outcome.
  void RecordDegradedStale();
  void RecordDegradedFallback();
  /// One backoff-and-resubmit cycle inside Classify.
  void RecordRetry();

  /// Dynamic-graph serving (ClassifyDelta). `edges` edge updates applied
  /// incrementally to a registered graph.
  void RecordDynamicUpdate(int64_t edges);
  /// One ClassifyDelta answered by the cache after the incremental
  /// fingerprint update (the fast path the feature exists for).
  void RecordDynamicIncrementalHit();
  /// One ClassifyDelta that had to run the full pipeline on the mutated
  /// graph.
  void RecordDynamicFullRecompute();

  /// Stage summaries; `stage` is one of "queue", "preprocess", "forward",
  /// "total". Cache hits are excluded from the queue/preprocess/forward
  /// series (they never enter those stages) but included in "total".
  /// Percentiles are exact order statistics of the retained samples.
  LatencySummary Latency(const std::string& stage) const;

  int64_t requests() const;
  int64_t cache_hits() const;
  int64_t cache_misses() const;
  int64_t rejected() const;
  double cache_hit_rate() const;  // hits / (hits + misses), 0 when empty

  int64_t outcome_count(ServeOutcome outcome) const;
  /// Sum over every outcome == number of Submit attempts that resolved.
  int64_t total_outcomes() const;
  int64_t shed() const;
  int64_t deadline_exceeded() const;  // all stages
  int64_t deadline_exceeded(const std::string& stage) const;
  int64_t degraded() const;  // stale + fallback
  int64_t degraded_stale() const;
  int64_t degraded_fallback() const;
  int64_t retries() const;

  int64_t dynamic_updates() const;  // edge updates, not ClassifyDelta calls
  int64_t dynamic_incremental_hits() const;
  int64_t dynamic_full_recomputes() const;

  int64_t num_batches() const;
  double mean_batch_size() const;
  /// batch size -> number of batches dispatched at that size.
  std::map<int, int64_t> batch_size_histogram() const;

  size_t max_queue_depth() const;
  double mean_queue_depth() const;

  /// Number of requests that actually ran a given stage (preprocess count ==
  /// cache misses when every miss is preprocessed exactly once).
  int64_t stage_count(const std::string& stage) const;

  /// The registry backing every counter and stage histogram. Scrape with
  /// registry().WritePrometheusText(os); metric names are documented in
  /// docs/observability.md.
  const obs::MetricsRegistry& registry() const { return *registry_; }
  obs::MetricsRegistry& registry() { return *registry_; }

  /// "stage | count | p50 | p95 | p99 | mean | max" rows.
  Table LatencyTable() const;
  /// Throughput / cache / batch / queue counters as name-value rows.
  Table SummaryTable() const;

  /// Prints both tables.
  void Print(std::ostream& os) const;

 private:
  /// One latency stage: a registry histogram (lock-free, bucketized, the
  /// scrape surface) plus a capped raw-sample store with exact count/sum/max
  /// for exact order statistics. Everything but the histogram is guarded by
  /// ServeMetrics::mu_.
  struct Series {
    obs::Histogram* histogram = nullptr;  // microseconds recorded as seconds
    std::vector<double> samples;
    int64_t count = 0;
    double sum = 0.0;
    double max = 0.0;

    void Record(double value_us);
    /// Sorts one copy of the samples and reads all three percentiles from
    /// it (the pre-fix code re-sorted per quantile, 3x per snapshot).
    LatencySummary Summarize() const;
  };

  const Series* SeriesFor(const std::string& stage) const;
  obs::Counter& DeadlineStageCounter(const std::string& stage) const;

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;  // == owned_registry_.get() unless injected

  // Registry instruments (addresses stable for the registry's lifetime).
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* rejected_;
  obs::Counter* outcomes_[kNumServeOutcomes];
  obs::Counter* degraded_stale_;
  obs::Counter* degraded_fallback_;
  obs::Counter* retries_;
  obs::Counter* dynamic_updates_;
  obs::Counter* dynamic_incremental_hits_;
  obs::Counter* dynamic_full_recomputes_;
  obs::Counter* batches_;
  obs::Counter* batch_items_;
  obs::Counter* queue_depth_samples_;
  obs::Gauge* queue_depth_sum_;
  obs::Gauge* max_queue_depth_;

  mutable std::mutex mu_;  // guards Series::samples and batch_sizes_
  Series queue_;
  Series preprocess_;
  Series forward_;
  Series total_;
  std::map<int, int64_t> batch_sizes_;
};

/// Cluster-level instruments: dispatch volume, work stealing, continuous-
/// batching admissions, fair-share sheds, and per-replica batch counts.
/// Registered on the cluster's shared registry (one scrape covers every
/// replica); all updates are lock-free counter increments, so replicas
/// record without coordinating. Request-level stats (latency, outcomes,
/// cache) stay in the shared ServeMetrics — this class covers only what is
/// meaningless for a single engine.
class ClusterMetrics {
 public:
  /// `registry` must outlive this object. Registers the aggregate counters
  /// plus one batches/requests counter pair per replica
  /// (deepmap_serve_cluster_replica<i>_{batches,requests}_total).
  ClusterMetrics(obs::MetricsRegistry* registry, size_t num_replicas);

  /// One request routed into a replica queue by the dispatcher.
  void RecordDispatch();
  /// One successful steal operation moving `stolen` requests.
  void RecordSteal(int64_t stolen);
  /// `admitted` requests joined an in-flight batch (continuous batching).
  void RecordContinuousAdmit(int64_t admitted);
  /// One request shed by per-tenant fair-share admission.
  void RecordTenantShed();
  /// One batch of `requests` completed by `replica`.
  void RecordReplicaBatch(size_t replica, int64_t requests);

  int64_t dispatched() const;
  int64_t steals() const;
  int64_t stolen_requests() const;
  int64_t continuous_admits() const;
  int64_t tenant_sheds() const;
  int64_t replica_batches(size_t replica) const;
  int64_t replica_requests(size_t replica) const;
  size_t num_replicas() const { return replica_batches_.size(); }

 private:
  obs::Counter* dispatched_;
  obs::Counter* steals_;
  obs::Counter* stolen_requests_;
  obs::Counter* continuous_admits_;
  obs::Counter* tenant_sheds_;
  std::vector<obs::Counter*> replica_batches_;
  std::vector<obs::Counter*> replica_requests_;
};

/// Supervision / self-healing instruments (deepmap_serve_health_* plus the
/// hot-swap counter deepmap_serve_reload_swaps_total): hang and crash
/// detections, restarts (aggregate and per replica), requests re-dispatched
/// away from failed replicas, poison-pill quarantines, and the live
/// unhealthy-replica gauge. Updated by the cluster's Supervisor; like
/// ClusterMetrics, every update is a lock-free registry increment.
class HealthMetrics {
 public:
  /// `registry` must outlive this object. Registers the aggregate
  /// instruments plus one restart counter per replica
  /// (deepmap_serve_health_replica<i>_restarts_total).
  HealthMetrics(obs::MetricsRegistry* registry, size_t num_replicas);

  /// Watchdog verdicts: one per detected stalled / dead worker.
  void RecordHang();
  void RecordCrash();
  /// One successful worker restart of `replica`.
  void RecordRestart(size_t replica);
  /// `n` requests recovered from a failed replica and re-enqueued on
  /// healthy siblings.
  void RecordRedispatched(int64_t n);
  /// One poison-pill request answered degraded instead of re-dispatched.
  void RecordQuarantined();
  /// One hot model swap applied to the serving handle.
  void RecordModelSwap();
  /// Unhealthy-replica gauge delta (+1 on detection, -1 on restart).
  void AddUnhealthy(int delta);

  int64_t hangs() const;
  int64_t crashes() const;
  int64_t restarts() const;
  int64_t replica_restarts(size_t replica) const;
  int64_t redispatched() const;
  int64_t quarantined() const;
  int64_t model_swaps() const;
  int64_t unhealthy_replicas() const;

 private:
  obs::Counter* hangs_;
  obs::Counter* crashes_;
  obs::Counter* restarts_;
  obs::Counter* redispatched_;
  obs::Counter* quarantined_;
  obs::Counter* model_swaps_;
  obs::Gauge* unhealthy_;
  std::vector<obs::Counter*> replica_restarts_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_METRICS_H_
