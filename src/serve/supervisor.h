// Replica supervision: the watchdog that turns EngineReplica's in-flight
// slot into a self-healing cluster.
//
// A background thread scans every replica on a fixed interval. Two failure
// signals exist:
//
//   crash  the worker thread exited while the cluster is running
//          (worker_exited() — the "serve.replica.crash" fail point, or any
//          future real crash-to-exit path)
//   hang   the popped batch has sat unclaimed in the in-flight slot past
//          hang_timeout ("serve.replica.hang" parks the worker there)
//
// On either verdict the supervisor (1) marks the replica UNHEALTHY so
// dispatch and work stealing route around it, (2) confiscates the parked
// batch and drains the queue — repairing the cluster's pending/active
// accounting and moving every recovered request into the `detached` count
// that Drain() waits on, (3) re-dispatches the recovered requests to the
// shortest healthy siblings, and (4) schedules a worker restart with
// exponential backoff. Confiscation is the exactly-once guarantee: the
// kParked -> confiscated transition races the worker's kParked -> kExecuting
// claim under one mutex, so exactly one side ever owns a request's promise —
// a false hang alarm (the worker claimed the batch between the timeout check
// and the confiscation) simply finds the slot empty and stands down.
//
// Requests recovered more than Options::max_request_failures times are
// poison pills: instead of riding to yet another replica (and likely killing
// it too), they are quarantined — answered immediately with the servable's
// degraded fallback prediction. Requests with no healthy sibling left are
// rejected with ResourceExhausted.
//
// Everything the watchdog does is also exposed synchronously via ScanOnce()
// so tests (and the chaos bench) can drive detection deterministically
// instead of sleeping.
#ifndef DEEPMAP_SERVE_SUPERVISOR_H_
#define DEEPMAP_SERVE_SUPERVISOR_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/metrics.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "serve/replica.h"

namespace deepmap::serve {

/// Watchdog + recovery policy for one ServeCluster's replica set.
class Supervisor {
 public:
  struct Options {
    /// Master switch; a disabled supervisor never starts its thread (tests
    /// that orchestrate failures by hand turn it off).
    bool enabled = true;
    /// Watchdog scan period.
    std::chrono::milliseconds check_interval{2};
    /// A batch parked unclaimed past this long means the worker is hung.
    /// Must comfortably exceed the worst-case pop -> claim window (normally
    /// microseconds; fail-point sync parks happen *after* the claim, so
    /// they do not count against it).
    std::chrono::milliseconds hang_timeout{200};
    /// A request recovered from more than this many failed replicas is
    /// quarantined with a degraded answer instead of re-dispatched.
    int max_request_failures = 2;
    /// Exponential restart backoff: initial * multiplier^(failures-1),
    /// capped at max.
    std::chrono::milliseconds restart_backoff_initial{2};
    double restart_backoff_multiplier = 2.0;
    std::chrono::milliseconds restart_backoff_max{500};
  };

  /// All pointers must outlive the supervisor. `on_complete` is invoked
  /// (outside any dispatch lock) for every request the supervisor resolves
  /// itself — quarantines and no-healthy-replica rejections — mirroring the
  /// pipeline's completion hook so per-tenant accounting stays exact.
  Supervisor(const Options& options,
             const std::vector<std::unique_ptr<EngineReplica>>* replicas,
             DispatchState* dispatch, ServableHandle* servable,
             ServeMetrics* metrics, HealthMetrics* health,
             std::function<void(const ServeRequest&)> on_complete);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Launches the watchdog thread (no-op when !options.enabled).
  void Start();
  /// Stops and joins the watchdog thread. Idempotent. Must be called before
  /// the replica set is torn down.
  void Stop();

  /// One synchronous watchdog pass over every replica: detect failures,
  /// recover + re-dispatch their requests, restart replicas whose backoff
  /// has elapsed. Serialized against the background thread, so tests may
  /// call it concurrently with a running supervisor.
  void ScanOnce();

  const Options& options() const { return options_; }

 private:
  /// Per-replica supervision record (supervisor-thread-private, guarded by
  /// scan_mu_ for the ScanOnce test entry point).
  struct Watch {
    int consecutive_failures = 0;
    bool awaiting_restart = false;
    std::chrono::steady_clock::time_point restart_at;
  };

  void Run();
  /// Handles one replica within a scan; returns through `watch`.
  void ScanReplica(EngineReplica* replica, Watch* watch);
  /// Re-dispatches `recovered` (already counted in dispatch->detached) away
  /// from replica `from`: healthy shortest-queue siblings for fresh
  /// requests, quarantine for poison pills, rejection when no healthy
  /// replica remains.
  void Redispatch(std::vector<ServeRequest>&& recovered, size_t from);
  std::chrono::milliseconds BackoffFor(int consecutive_failures) const;

  const Options options_;
  const std::vector<std::unique_ptr<EngineReplica>>* replicas_;
  DispatchState* dispatch_;
  ServableHandle* servable_;
  ServeMetrics* metrics_;
  HealthMetrics* health_;
  std::function<void(const ServeRequest&)> on_complete_;

  std::mutex scan_mu_;  // serializes ScanOnce vs the background thread
  std::vector<Watch> watches_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_SUPERVISOR_H_
