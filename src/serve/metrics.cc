#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace deepmap::serve {
namespace {

/// Microseconds -> seconds for the registry histograms.
constexpr double kMicrosToSeconds = 1e-6;

std::string FormatMicros(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  return buf;
}

/// Lowercases and maps separators so arbitrary stage strings ("admission",
/// "preprocess", ...) form valid metric name tokens.
std::string SanitizeToken(const std::string& raw) {
  std::string token;
  token.reserve(raw.size());
  for (char c : raw) {
    if (c >= 'A' && c <= 'Z') {
      token.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      token.push_back(c);
    } else if (!token.empty() && token.back() != '_') {
      token.push_back('_');
    }
  }
  while (!token.empty() && token.back() == '_') token.pop_back();
  return token.empty() ? "unknown" : token;
}

const char* OutcomeToken(int outcome) {
  switch (static_cast<ServeOutcome>(outcome)) {
    case ServeOutcome::kOk: return "ok";
    case ServeOutcome::kDegraded: return "degraded";
    case ServeOutcome::kShed: return "shed";
    case ServeOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case ServeOutcome::kRejected: return "rejected";
    case ServeOutcome::kError: return "error";
  }
  return "unknown";
}

}  // namespace

size_t NearestRankIndex(size_t n, double q) {
  if (n == 0) return 0;
  // ceil(q*n) - 1, with an epsilon so 0.95 (stored as 0.95000...011 in
  // binary) times 20 does not ceil to 20 and select the max instead of the
  // 19th-smallest sample. The guard is relative to n so it stays effective
  // for large sample counts.
  const double rank = std::ceil(q * static_cast<double>(n) -
                                static_cast<double>(n) * 1e-12 - 1e-9);
  if (rank <= 1.0) return 0;
  const size_t index = static_cast<size_t>(rank) - 1;
  return std::min(index, n - 1);
}

ServeMetrics::ServeMetrics(obs::MetricsRegistry* registry)
    : owned_registry_(registry == nullptr
                          ? std::make_unique<obs::MetricsRegistry>()
                          : nullptr),
      registry_(registry == nullptr ? owned_registry_.get() : registry) {
  obs::MetricsRegistry& r = *registry_;
  cache_hits_ = &r.GetCounter("deepmap_serve_cache_hits_total",
                              "requests answered from the prediction cache");
  cache_misses_ = &r.GetCounter("deepmap_serve_cache_misses_total",
                                "requests that ran the full pipeline");
  rejected_ = &r.GetCounter("deepmap_serve_rejected_total",
                            "enqueue failures (queue full / shutdown)");
  for (int i = 0; i < kNumServeOutcomes; ++i) {
    outcomes_[i] = &r.GetCounter(
        std::string("deepmap_serve_outcome_") + OutcomeToken(i) + "_total",
        "request dispositions; outcomes sum to resolved submissions");
  }
  degraded_stale_ = &r.GetCounter("deepmap_serve_degraded_stale_total",
                                  "degraded answers served stale-from-cache");
  degraded_fallback_ =
      &r.GetCounter("deepmap_serve_degraded_fallback_total",
                    "degraded answers served by the majority-class fallback");
  retries_ = &r.GetCounter("deepmap_serve_retries_total",
                           "backoff-and-resubmit cycles inside Classify");
  dynamic_updates_ =
      &r.GetCounter("deepmap_serve_dynamic_updates_total",
                    "edge updates applied to registered dynamic graphs");
  dynamic_incremental_hits_ = &r.GetCounter(
      "deepmap_serve_dynamic_incremental_hits_total",
      "ClassifyDelta calls answered from cache after an incremental "
      "fingerprint update");
  dynamic_full_recomputes_ = &r.GetCounter(
      "deepmap_serve_dynamic_full_recomputes_total",
      "ClassifyDelta calls that ran the full pipeline on the mutated graph");
  batches_ = &r.GetCounter("deepmap_serve_batches_total",
                           "batches dispatched by the micro-batcher");
  batch_items_ = &r.GetCounter("deepmap_serve_batch_items_total",
                               "requests carried by dispatched batches");
  queue_depth_samples_ =
      &r.GetCounter("deepmap_serve_queue_depth_samples_total",
                    "queue-depth observations (one per dispatched batch)");
  queue_depth_sum_ = &r.GetGauge("deepmap_serve_queue_depth_sum",
                                 "running sum of observed queue depths");
  max_queue_depth_ = &r.GetGauge("deepmap_serve_queue_depth_max",
                                 "high-water mark of the batcher queue");
  queue_.histogram = &r.GetHistogram(
      "deepmap_serve_queue_seconds", {}, "submit -> batch dispatch");
  preprocess_.histogram =
      &r.GetHistogram("deepmap_serve_preprocess_seconds", {},
                      "feature map -> alignment -> tensor");
  forward_.histogram = &r.GetHistogram("deepmap_serve_forward_seconds", {},
                                       "batched CNN forward");
  total_.histogram = &r.GetHistogram("deepmap_serve_total_seconds", {},
                                     "submit -> promise fulfilled");
}

obs::Counter& ServeMetrics::DeadlineStageCounter(
    const std::string& stage) const {
  return registry_->GetCounter(
      "deepmap_serve_deadline_" + SanitizeToken(stage) + "_total",
      "deadline expiries attributed to this stage");
}

void ServeMetrics::Series::Record(double value_us) {
  histogram->Observe(value_us * kMicrosToSeconds);
  ++count;
  sum += value_us;
  max = std::max(max, value_us);
  if (samples.size() < kMaxLatencySamples) samples.push_back(value_us);
}

LatencySummary ServeMetrics::Series::Summarize() const {
  LatencySummary s;
  s.count = count;
  if (count == 0) return s;
  s.mean = sum / static_cast<double>(count);
  s.max = max;
  // One sorted copy serves all three percentiles; the pre-fix code copied
  // and nth_element'd the sample vector once per quantile.
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.p50 = sorted[NearestRankIndex(sorted.size(), 0.50)];
  s.p95 = sorted[NearestRankIndex(sorted.size(), 0.95)];
  s.p99 = sorted[NearestRankIndex(sorted.size(), 0.99)];
  return s;
}

void ServeMetrics::RecordRequest(const RequestTiming& timing) {
  if (timing.cache_hit) {
    cache_hits_->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    total_.Record(timing.total_us);
    return;
  }
  cache_misses_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  total_.Record(timing.total_us);
  queue_.Record(timing.queue_us);
  preprocess_.Record(timing.preprocess_us);
  forward_.Record(timing.forward_us);
}

void ServeMetrics::RecordBatch(int batch_size) {
  batches_->Increment();
  batch_items_->Increment(batch_size);
  std::lock_guard<std::mutex> lock(mu_);
  ++batch_sizes_[batch_size];
}

void ServeMetrics::RecordQueueDepth(size_t depth) {
  queue_depth_samples_->Increment();
  queue_depth_sum_->Add(static_cast<double>(depth));
  max_queue_depth_->SetMax(static_cast<double>(depth));
}

void ServeMetrics::RecordRejected() {
  rejected_->Increment();
  outcomes_[static_cast<int>(ServeOutcome::kRejected)]->Increment();
}

void ServeMetrics::RecordOutcome(ServeOutcome outcome) {
  outcomes_[static_cast<int>(outcome)]->Increment();
}

void ServeMetrics::RecordShed() {
  outcomes_[static_cast<int>(ServeOutcome::kShed)]->Increment();
}

void ServeMetrics::RecordDeadlineExceeded(const std::string& stage) {
  DeadlineStageCounter(stage).Increment();
  outcomes_[static_cast<int>(ServeOutcome::kDeadlineExceeded)]->Increment();
}

void ServeMetrics::RecordDegradedStale() {
  degraded_stale_->Increment();
  outcomes_[static_cast<int>(ServeOutcome::kDegraded)]->Increment();
}

void ServeMetrics::RecordDegradedFallback() {
  degraded_fallback_->Increment();
  outcomes_[static_cast<int>(ServeOutcome::kDegraded)]->Increment();
}

void ServeMetrics::RecordRetry() { retries_->Increment(); }

void ServeMetrics::RecordDynamicUpdate(int64_t edges) {
  dynamic_updates_->Increment(edges);
}

void ServeMetrics::RecordDynamicIncrementalHit() {
  dynamic_incremental_hits_->Increment();
}

void ServeMetrics::RecordDynamicFullRecompute() {
  dynamic_full_recomputes_->Increment();
}

const ServeMetrics::Series* ServeMetrics::SeriesFor(
    const std::string& stage) const {
  if (stage == "queue") return &queue_;
  if (stage == "preprocess") return &preprocess_;
  if (stage == "forward") return &forward_;
  if (stage == "total") return &total_;
  return nullptr;
}

LatencySummary ServeMetrics::Latency(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = SeriesFor(stage);
  return series == nullptr ? LatencySummary{} : series->Summarize();
}

int64_t ServeMetrics::stage_count(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = SeriesFor(stage);
  return series == nullptr ? 0 : series->count;
}

int64_t ServeMetrics::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_.count;
}

int64_t ServeMetrics::cache_hits() const { return cache_hits_->Value(); }

int64_t ServeMetrics::cache_misses() const { return cache_misses_->Value(); }

int64_t ServeMetrics::rejected() const { return rejected_->Value(); }

double ServeMetrics::cache_hit_rate() const {
  const int64_t hits = cache_hits_->Value();
  const int64_t n = hits + cache_misses_->Value();
  return n == 0 ? 0.0 : static_cast<double>(hits) / n;
}

int64_t ServeMetrics::outcome_count(ServeOutcome outcome) const {
  return outcomes_[static_cast<int>(outcome)]->Value();
}

int64_t ServeMetrics::total_outcomes() const {
  int64_t total = 0;
  for (int i = 0; i < kNumServeOutcomes; ++i) total += outcomes_[i]->Value();
  return total;
}

int64_t ServeMetrics::shed() const {
  return outcomes_[static_cast<int>(ServeOutcome::kShed)]->Value();
}

int64_t ServeMetrics::deadline_exceeded() const {
  return outcomes_[static_cast<int>(ServeOutcome::kDeadlineExceeded)]->Value();
}

int64_t ServeMetrics::deadline_exceeded(const std::string& stage) const {
  return DeadlineStageCounter(stage).Value();
}

int64_t ServeMetrics::degraded() const {
  return degraded_stale_->Value() + degraded_fallback_->Value();
}

int64_t ServeMetrics::degraded_stale() const {
  return degraded_stale_->Value();
}

int64_t ServeMetrics::degraded_fallback() const {
  return degraded_fallback_->Value();
}

int64_t ServeMetrics::retries() const { return retries_->Value(); }

int64_t ServeMetrics::dynamic_updates() const {
  return dynamic_updates_->Value();
}

int64_t ServeMetrics::dynamic_incremental_hits() const {
  return dynamic_incremental_hits_->Value();
}

int64_t ServeMetrics::dynamic_full_recomputes() const {
  return dynamic_full_recomputes_->Value();
}

int64_t ServeMetrics::num_batches() const { return batches_->Value(); }

double ServeMetrics::mean_batch_size() const {
  const int64_t batches = batches_->Value();
  return batches == 0
             ? 0.0
             : static_cast<double>(batch_items_->Value()) / batches;
}

std::map<int, int64_t> ServeMetrics::batch_size_histogram() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_sizes_;
}

size_t ServeMetrics::max_queue_depth() const {
  return static_cast<size_t>(max_queue_depth_->Value());
}

double ServeMetrics::mean_queue_depth() const {
  const int64_t samples = queue_depth_samples_->Value();
  return samples == 0
             ? 0.0
             : queue_depth_sum_->Value() / static_cast<double>(samples);
}

Table ServeMetrics::LatencyTable() const {
  Table table({"stage", "count", "p50_us", "p95_us", "p99_us", "mean_us",
               "max_us"});
  for (const char* stage : {"queue", "preprocess", "forward", "total"}) {
    LatencySummary s = Latency(stage);
    table.AddRow({stage, std::to_string(s.count), FormatMicros(s.p50),
                  FormatMicros(s.p95), FormatMicros(s.p99),
                  FormatMicros(s.mean), FormatMicros(s.max)});
  }
  return table;
}

Table ServeMetrics::SummaryTable() const {
  Table table({"metric", "value"});
  table.AddRow({"requests", std::to_string(requests())});
  table.AddRow({"rejected", std::to_string(rejected())});
  table.AddRow({"shed", std::to_string(shed())});
  table.AddRow({"deadline_exceeded", std::to_string(deadline_exceeded())});
  table.AddRow({"degraded_stale", std::to_string(degraded_stale())});
  table.AddRow({"degraded_fallback", std::to_string(degraded_fallback())});
  table.AddRow({"retries", std::to_string(retries())});
  table.AddRow({"cache_hits", std::to_string(cache_hits())});
  table.AddRow({"cache_misses", std::to_string(cache_misses())});
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f%%", 100.0 * cache_hit_rate());
  table.AddRow({"cache_hit_rate", rate});
  table.AddRow({"batches", std::to_string(num_batches())});
  char mean_batch[32];
  std::snprintf(mean_batch, sizeof(mean_batch), "%.2f", mean_batch_size());
  table.AddRow({"mean_batch_size", mean_batch});
  table.AddRow({"max_queue_depth", std::to_string(max_queue_depth())});
  char mean_depth[32];
  std::snprintf(mean_depth, sizeof(mean_depth), "%.2f", mean_queue_depth());
  table.AddRow({"mean_queue_depth", mean_depth});
  return table;
}

ClusterMetrics::ClusterMetrics(obs::MetricsRegistry* registry,
                               size_t num_replicas) {
  obs::MetricsRegistry& r = *registry;
  dispatched_ = &r.GetCounter("deepmap_serve_cluster_dispatched_total",
                              "requests routed into replica queues");
  steals_ = &r.GetCounter("deepmap_serve_cluster_steals_total",
                          "steal operations by idle replicas");
  stolen_requests_ =
      &r.GetCounter("deepmap_serve_cluster_stolen_requests_total",
                    "requests moved between replica queues by stealing");
  continuous_admits_ =
      &r.GetCounter("deepmap_serve_cluster_continuous_admits_total",
                    "requests admitted into an already in-flight batch");
  tenant_sheds_ =
      &r.GetCounter("deepmap_serve_cluster_tenant_shed_total",
                    "requests shed by per-tenant fair-share admission");
  replica_batches_.reserve(num_replicas);
  replica_requests_.reserve(num_replicas);
  for (size_t i = 0; i < num_replicas; ++i) {
    const std::string prefix =
        "deepmap_serve_cluster_replica" + std::to_string(i);
    replica_batches_.push_back(&r.GetCounter(
        prefix + "_batches_total", "batches completed by this replica"));
    replica_requests_.push_back(&r.GetCounter(
        prefix + "_requests_total", "requests completed by this replica"));
  }
}

void ClusterMetrics::RecordDispatch() { dispatched_->Increment(); }

void ClusterMetrics::RecordSteal(int64_t stolen) {
  steals_->Increment();
  stolen_requests_->Increment(stolen);
}

void ClusterMetrics::RecordContinuousAdmit(int64_t admitted) {
  continuous_admits_->Increment(admitted);
}

void ClusterMetrics::RecordTenantShed() { tenant_sheds_->Increment(); }

void ClusterMetrics::RecordReplicaBatch(size_t replica, int64_t requests) {
  replica_batches_[replica]->Increment();
  replica_requests_[replica]->Increment(requests);
}

int64_t ClusterMetrics::dispatched() const { return dispatched_->Value(); }

int64_t ClusterMetrics::steals() const { return steals_->Value(); }

int64_t ClusterMetrics::stolen_requests() const {
  return stolen_requests_->Value();
}

int64_t ClusterMetrics::continuous_admits() const {
  return continuous_admits_->Value();
}

int64_t ClusterMetrics::tenant_sheds() const { return tenant_sheds_->Value(); }

int64_t ClusterMetrics::replica_batches(size_t replica) const {
  return replica_batches_[replica]->Value();
}

int64_t ClusterMetrics::replica_requests(size_t replica) const {
  return replica_requests_[replica]->Value();
}

HealthMetrics::HealthMetrics(obs::MetricsRegistry* registry,
                             size_t num_replicas) {
  obs::MetricsRegistry& r = *registry;
  hangs_ = &r.GetCounter("deepmap_serve_health_hangs_total",
                         "hung replica workers detected by the watchdog");
  crashes_ = &r.GetCounter("deepmap_serve_health_crashes_total",
                           "dead replica workers detected by the watchdog");
  restarts_ = &r.GetCounter("deepmap_serve_health_restarts_total",
                            "replica workers restarted by the supervisor");
  redispatched_ =
      &r.GetCounter("deepmap_serve_health_redispatched_total",
                    "requests re-dispatched away from failed replicas");
  quarantined_ =
      &r.GetCounter("deepmap_serve_health_quarantined_total",
                    "poison-pill requests answered degraded after repeated "
                    "replica failures");
  model_swaps_ = &r.GetCounter("deepmap_serve_reload_swaps_total",
                               "hot model swaps applied to the serving handle");
  unhealthy_ = &r.GetGauge("deepmap_serve_health_unhealthy_replicas",
                           "replicas currently marked unhealthy");
  replica_restarts_.reserve(num_replicas);
  for (size_t i = 0; i < num_replicas; ++i) {
    replica_restarts_.push_back(&r.GetCounter(
        "deepmap_serve_health_replica" + std::to_string(i) + "_restarts_total",
        "worker restarts of this replica"));
  }
}

void HealthMetrics::RecordHang() { hangs_->Increment(); }

void HealthMetrics::RecordCrash() { crashes_->Increment(); }

void HealthMetrics::RecordRestart(size_t replica) {
  restarts_->Increment();
  if (replica < replica_restarts_.size()) {
    replica_restarts_[replica]->Increment();
  }
}

void HealthMetrics::RecordRedispatched(int64_t n) {
  redispatched_->Increment(n);
}

void HealthMetrics::RecordQuarantined() { quarantined_->Increment(); }

void HealthMetrics::RecordModelSwap() { model_swaps_->Increment(); }

void HealthMetrics::AddUnhealthy(int delta) {
  unhealthy_->Add(static_cast<double>(delta));
}

int64_t HealthMetrics::hangs() const { return hangs_->Value(); }

int64_t HealthMetrics::crashes() const { return crashes_->Value(); }

int64_t HealthMetrics::restarts() const { return restarts_->Value(); }

int64_t HealthMetrics::replica_restarts(size_t replica) const {
  return replica_restarts_[replica]->Value();
}

int64_t HealthMetrics::redispatched() const { return redispatched_->Value(); }

int64_t HealthMetrics::quarantined() const { return quarantined_->Value(); }

int64_t HealthMetrics::model_swaps() const { return model_swaps_->Value(); }

int64_t HealthMetrics::unhealthy_replicas() const {
  return static_cast<int64_t>(unhealthy_->Value());
}

void ServeMetrics::Print(std::ostream& os) const {
  os << "Per-stage latency (cache hits excluded from pipeline stages):\n";
  LatencyTable().Print(os);
  os << "\nServing summary:\n";
  SummaryTable().Print(os);
}

}  // namespace deepmap::serve
