#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace deepmap::serve {
namespace {

/// Nearest-rank percentile of an unsorted copy (q in [0, 1]).
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  if (rank > 0) --rank;
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

std::string FormatMicros(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  return buf;
}

}  // namespace

void ServeMetrics::Series::Record(double value) {
  ++count;
  sum += value;
  max = std::max(max, value);
  if (samples.size() < kMaxLatencySamples) samples.push_back(value);
}

LatencySummary ServeMetrics::Series::Summarize() const {
  LatencySummary s;
  s.count = count;
  if (count == 0) return s;
  s.mean = sum / static_cast<double>(count);
  s.max = max;
  s.p50 = Percentile(samples, 0.50);
  s.p95 = Percentile(samples, 0.95);
  s.p99 = Percentile(samples, 0.99);
  return s;
}

void ServeMetrics::RecordRequest(const RequestTiming& timing) {
  std::lock_guard<std::mutex> lock(mu_);
  total_.Record(timing.total_us);
  if (timing.cache_hit) {
    ++cache_hits_;
    return;
  }
  ++cache_misses_;
  queue_.Record(timing.queue_us);
  preprocess_.Record(timing.preprocess_us);
  forward_.Record(timing.forward_us);
}

void ServeMetrics::RecordBatch(int batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batch_sizes_[batch_size];
  ++batch_count_;
  batch_item_total_ += batch_size;
}

void ServeMetrics::RecordQueueDepth(size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  max_queue_depth_ = std::max(max_queue_depth_, depth);
  queue_depth_sum_ += static_cast<double>(depth);
  ++queue_depth_samples_;
}

void ServeMetrics::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
  ++outcomes_[static_cast<int>(ServeOutcome::kRejected)];
}

void ServeMetrics::RecordOutcome(ServeOutcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  ++outcomes_[static_cast<int>(outcome)];
}

void ServeMetrics::RecordShed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++outcomes_[static_cast<int>(ServeOutcome::kShed)];
}

void ServeMetrics::RecordDeadlineExceeded(const std::string& stage) {
  std::lock_guard<std::mutex> lock(mu_);
  ++deadline_stages_[stage];
  ++outcomes_[static_cast<int>(ServeOutcome::kDeadlineExceeded)];
}

void ServeMetrics::RecordDegradedStale() {
  std::lock_guard<std::mutex> lock(mu_);
  ++degraded_stale_;
  ++outcomes_[static_cast<int>(ServeOutcome::kDegraded)];
}

void ServeMetrics::RecordDegradedFallback() {
  std::lock_guard<std::mutex> lock(mu_);
  ++degraded_fallback_;
  ++outcomes_[static_cast<int>(ServeOutcome::kDegraded)];
}

void ServeMetrics::RecordRetry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++retries_;
}

const ServeMetrics::Series* ServeMetrics::SeriesFor(
    const std::string& stage) const {
  if (stage == "queue") return &queue_;
  if (stage == "preprocess") return &preprocess_;
  if (stage == "forward") return &forward_;
  if (stage == "total") return &total_;
  return nullptr;
}

LatencySummary ServeMetrics::Latency(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = SeriesFor(stage);
  return series == nullptr ? LatencySummary{} : series->Summarize();
}

int64_t ServeMetrics::stage_count(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* series = SeriesFor(stage);
  return series == nullptr ? 0 : series->count;
}

int64_t ServeMetrics::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_.count;
}

int64_t ServeMetrics::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

int64_t ServeMetrics::cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_misses_;
}

int64_t ServeMetrics::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

double ServeMetrics::cache_hit_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t n = cache_hits_ + cache_misses_;
  return n == 0 ? 0.0 : static_cast<double>(cache_hits_) / n;
}

int64_t ServeMetrics::outcome_count(ServeOutcome outcome) const {
  std::lock_guard<std::mutex> lock(mu_);
  return outcomes_[static_cast<int>(outcome)];
}

int64_t ServeMetrics::total_outcomes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (int i = 0; i < kNumServeOutcomes; ++i) total += outcomes_[i];
  return total;
}

int64_t ServeMetrics::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outcomes_[static_cast<int>(ServeOutcome::kShed)];
}

int64_t ServeMetrics::deadline_exceeded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outcomes_[static_cast<int>(ServeOutcome::kDeadlineExceeded)];
}

int64_t ServeMetrics::deadline_exceeded(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = deadline_stages_.find(stage);
  return it == deadline_stages_.end() ? 0 : it->second;
}

int64_t ServeMetrics::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_stale_ + degraded_fallback_;
}

int64_t ServeMetrics::degraded_stale() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_stale_;
}

int64_t ServeMetrics::degraded_fallback() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_fallback_;
}

int64_t ServeMetrics::retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retries_;
}

int64_t ServeMetrics::num_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_count_;
}

double ServeMetrics::mean_batch_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_count_ == 0
             ? 0.0
             : static_cast<double>(batch_item_total_) / batch_count_;
}

std::map<int, int64_t> ServeMetrics::batch_size_histogram() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_sizes_;
}

size_t ServeMetrics::max_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_queue_depth_;
}

double ServeMetrics::mean_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_depth_samples_ == 0
             ? 0.0
             : queue_depth_sum_ / static_cast<double>(queue_depth_samples_);
}

Table ServeMetrics::LatencyTable() const {
  Table table({"stage", "count", "p50_us", "p95_us", "p99_us", "mean_us",
               "max_us"});
  for (const char* stage : {"queue", "preprocess", "forward", "total"}) {
    LatencySummary s = Latency(stage);
    table.AddRow({stage, std::to_string(s.count), FormatMicros(s.p50),
                  FormatMicros(s.p95), FormatMicros(s.p99),
                  FormatMicros(s.mean), FormatMicros(s.max)});
  }
  return table;
}

Table ServeMetrics::SummaryTable() const {
  Table table({"metric", "value"});
  table.AddRow({"requests", std::to_string(requests())});
  table.AddRow({"rejected", std::to_string(rejected())});
  table.AddRow({"shed", std::to_string(shed())});
  table.AddRow({"deadline_exceeded", std::to_string(deadline_exceeded())});
  table.AddRow({"degraded_stale", std::to_string(degraded_stale())});
  table.AddRow({"degraded_fallback", std::to_string(degraded_fallback())});
  table.AddRow({"retries", std::to_string(retries())});
  table.AddRow({"cache_hits", std::to_string(cache_hits())});
  table.AddRow({"cache_misses", std::to_string(cache_misses())});
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f%%", 100.0 * cache_hit_rate());
  table.AddRow({"cache_hit_rate", rate});
  table.AddRow({"batches", std::to_string(num_batches())});
  char mean_batch[32];
  std::snprintf(mean_batch, sizeof(mean_batch), "%.2f", mean_batch_size());
  table.AddRow({"mean_batch_size", mean_batch});
  table.AddRow({"max_queue_depth", std::to_string(max_queue_depth())});
  char mean_depth[32];
  std::snprintf(mean_depth, sizeof(mean_depth), "%.2f", mean_queue_depth());
  table.AddRow({"mean_queue_depth", mean_depth});
  return table;
}

void ServeMetrics::Print(std::ostream& os) const {
  os << "Per-stage latency (cache hits excluded from pipeline stages):\n";
  LatencyTable().Print(os);
  os << "\nServing summary:\n";
  SummaryTable().Print(os);
}

}  // namespace deepmap::serve
