#include "serve/engine.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace deepmap::serve {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<ServableModel> model,
                                 const Options& options)
    : model_(std::move(model)),
      options_(options),
      cache_(options.cache_capacity),
      pool_(options.num_threads) {
  DEEPMAP_CHECK(model_ != nullptr);
  batcher_ = std::make_unique<MicroBatcher>(
      options_.batcher,
      [this](std::vector<ServeRequest>&& batch, size_t depth_after) {
        HandleBatch(std::move(batch), depth_after);
      });
}

InferenceEngine::~InferenceEngine() {
  // MicroBatcher::~MicroBatcher drains the queue through HandleBatch, which
  // still needs pool_/cache_/metrics_ — stop it before anything else dies.
  batcher_->Stop();
}

std::future<StatusOr<Prediction>> InferenceEngine::Submit(
    const graph::Graph& g) {
  const auto start = std::chrono::steady_clock::now();
  ServeRequest request;
  request.enqueue_time = start;
  std::future<StatusOr<Prediction>> future = request.promise.get_future();

  if (options_.cache_capacity > 0) {
    request.cache_key =
        PredictionCache::KeyFor(g, options_.cache_wl_iterations);
    if (std::optional<Prediction> hit = cache_.Lookup(request.cache_key)) {
      RequestTiming timing;
      timing.cache_hit = true;
      timing.total_us =
          MicrosSince(start, std::chrono::steady_clock::now());
      metrics_.RecordRequest(timing);
      request.promise.set_value(std::move(*hit));
      return future;
    }
  }

  request.graph = g;
  if (Status s = batcher_->Submit(std::move(request)); !s.ok()) {
    // Submit only fails before moving the request into the queue, so the
    // promise is still ours to fulfill.
    metrics_.RecordRejected();
    std::promise<StatusOr<Prediction>> rejected;
    future = rejected.get_future();
    rejected.set_value(StatusOr<Prediction>(s));
  }
  return future;
}

StatusOr<Prediction> InferenceEngine::Classify(const graph::Graph& g) {
  return Submit(g).get();
}

void InferenceEngine::Drain() { batcher_->Drain(); }

void InferenceEngine::HandleBatch(std::vector<ServeRequest>&& batch,
                                  size_t queue_depth_after) {
  const size_t n = batch.size();
  const auto dispatch_time = std::chrono::steady_clock::now();
  metrics_.RecordBatch(static_cast<int>(n));
  metrics_.RecordQueueDepth(queue_depth_after);

  // Stage 1: preprocess every graph of the batch on the thread pool.
  std::vector<Status> statuses(n);
  std::vector<nn::Tensor> inputs(n);
  std::vector<double> preprocess_us(n, 0.0);
  Preprocessor& preprocessor = model_->preprocessor();
  for (size_t i = 0; i < n; ++i) {
    pool_.Submit([&, i] {
      const auto t0 = std::chrono::steady_clock::now();
      StatusOr<nn::Tensor> result = preprocessor.Preprocess(batch[i].graph);
      if (result.ok()) {
        inputs[i] = std::move(result).value();
      } else {
        statuses[i] = result.status();
      }
      preprocess_us[i] =
          MicrosSince(t0, std::chrono::steady_clock::now());
    });
  }
  pool_.Wait();

  // Stage 2: batched forward pass, sharded across the pool. Each shard
  // reuses one scratch workspace for its whole slice.
  std::vector<size_t> valid;
  valid.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (statuses[i].ok()) valid.push_back(i);
  }
  std::vector<Prediction> predictions(n);
  std::vector<double> forward_us(n, 0.0);
  if (!valid.empty()) {
    const CompiledModel& compiled = model_->compiled();
    const size_t num_shards =
        std::min(std::max<size_t>(pool_.num_threads(), 1), valid.size());
    const size_t per_shard = (valid.size() + num_shards - 1) / num_shards;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      const size_t begin = shard * per_shard;
      const size_t end = std::min(valid.size(), begin + per_shard);
      if (begin >= end) break;
      pool_.Submit([&, begin, end] {
        ForwardScratch scratch;
        for (size_t v = begin; v < end; ++v) {
          const size_t i = valid[v];
          const auto t0 = std::chrono::steady_clock::now();
          predictions[i] = compiled.Predict(inputs[i], &scratch);
          forward_us[i] =
              MicrosSince(t0, std::chrono::steady_clock::now());
        }
      });
    }
    pool_.Wait();
  }

  // Stage 3: warm the cache, fulfill promises, record metrics.
  for (size_t i = 0; i < n; ++i) {
    RequestTiming timing;
    timing.queue_us = MicrosSince(batch[i].enqueue_time, dispatch_time);
    timing.preprocess_us = preprocess_us[i];
    timing.forward_us = forward_us[i];
    timing.total_us = MicrosSince(batch[i].enqueue_time,
                                  std::chrono::steady_clock::now());
    metrics_.RecordRequest(timing);
    if (statuses[i].ok()) {
      if (options_.cache_capacity > 0 && !batch[i].cache_key.empty()) {
        cache_.Insert(batch[i].cache_key, predictions[i]);
      }
      batch[i].promise.set_value(std::move(predictions[i]));
    } else {
      batch[i].promise.set_value(StatusOr<Prediction>(statuses[i]));
    }
  }
}

}  // namespace deepmap::serve
