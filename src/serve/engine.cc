#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/failpoint.h"
#include "obs/trace.h"

namespace deepmap::serve {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

bool Expired(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= deadline;
}

Status DeadlineError(const char* stage) {
  return Status::DeadlineExceeded(
      std::string("request deadline expired (stage=") + stage + ")");
}

/// Infrastructure failures eligible for degraded answers. Client errors
/// (InvalidArgument) and deadline expiry must surface unchanged.
bool Degradable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kInternal;
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<ServableModel> model,
                                 const Options& options)
    : model_(std::move(model)),
      options_(options),
      metrics_(options.metrics_registry),
      cache_(options.cache_capacity),
      pool_(options.num_threads),
      admission_rng_(options.admission.seed) {
  DEEPMAP_CHECK(model_ != nullptr);
  batcher_ = std::make_unique<MicroBatcher>(
      options_.batcher,
      [this](std::vector<ServeRequest>&& batch, size_t depth_after) {
        HandleBatch(std::move(batch), depth_after);
      });
}

InferenceEngine::~InferenceEngine() {
  // MicroBatcher::~MicroBatcher drains the queue through HandleBatch, which
  // still needs pool_/cache_/metrics_ — stop it before anything else dies.
  batcher_->Stop();
}

void InferenceEngine::RecordLatencySample(double total_us) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_window_[latency_next_] = total_us;
  latency_next_ = (latency_next_ + 1) % kP95Window;
  ++latency_count_;
  if (latency_count_ < kP95Refresh || latency_count_ % kP95Refresh != 0) {
    return;
  }
  const size_t filled = std::min(latency_count_, kP95Window);
  std::array<double, kP95Window> scratch;
  std::copy(latency_window_.begin(),
            latency_window_.begin() + static_cast<ptrdiff_t>(filled),
            scratch.begin());
  size_t rank = static_cast<size_t>(0.95 * static_cast<double>(filled));
  if (rank >= filled) rank = filled - 1;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<ptrdiff_t>(rank),
                   scratch.begin() + static_cast<ptrdiff_t>(filled));
  p95_us_.store(scratch[rank], std::memory_order_relaxed);
}

bool InferenceEngine::ShouldShed(std::string* detail) {
  const AdmissionOptions& admission = options_.admission;
  double shed_probability = 0.0;
  const size_t depth = batcher_->queue_depth();
  const size_t capacity = options_.batcher.queue_capacity;
  if (admission.queue_shed_watermark < 1.0 && capacity > 0) {
    const double utilization =
        static_cast<double>(depth) / static_cast<double>(capacity);
    if (utilization >= admission.queue_shed_watermark) {
      shed_probability = (utilization - admission.queue_shed_watermark) /
                         (1.0 - admission.queue_shed_watermark);
    }
  }
  const double p95 = observed_p95_us();
  if (admission.p95_target_us > 0.0 && p95 > admission.p95_target_us) {
    // Ramp: certain shed at 2x the latency target.
    shed_probability = std::max(
        shed_probability, std::min(1.0, p95 / admission.p95_target_us - 1.0));
  }
  if (shed_probability <= 0.0) return false;
  bool shed = shed_probability >= 1.0;
  if (!shed) {
    std::lock_guard<std::mutex> lock(admission_mu_);
    shed = admission_rng_.Bernoulli(shed_probability);
  }
  if (shed && detail != nullptr) {
    *detail = "queue depth " + std::to_string(depth) + "/" +
              std::to_string(capacity) + ", observed p95 " +
              std::to_string(static_cast<int64_t>(p95)) + "us";
  }
  return shed;
}

std::future<StatusOr<Prediction>> InferenceEngine::Submit(
    const graph::Graph& g, const RequestOptions& request) {
  // Covers admission + cache lookup + enqueue; queue/preprocess/forward time
  // shows up under the dispatcher's serve.batch span instead.
  DEEPMAP_TRACE_SPAN("serve.submit", "serve");
  const auto start = std::chrono::steady_clock::now();
  ServeRequest queued;
  queued.enqueue_time = start;
  if (request.deadline.has_value()) queued.deadline = *request.deadline;
  std::future<StatusOr<Prediction>> future = queued.promise.get_future();

  auto reject = [&](Status status) {
    std::promise<StatusOr<Prediction>> rejected;
    std::future<StatusOr<Prediction>> f = rejected.get_future();
    rejected.set_value(StatusOr<Prediction>(std::move(status)));
    return f;
  };

  // Stage "admission": a request that arrives already expired never costs a
  // hash, a queue slot, or a batch.
  if (Expired(queued.deadline)) {
    metrics_.RecordDeadlineExceeded("admission");
    return reject(DeadlineError("admission"));
  }

  if (options_.cache_capacity > 0) {
    queued.cache_key = PredictionCache::KeyFor(g, options_.cache_wl_iterations);
    if (std::optional<Prediction> hit = cache_.Lookup(queued.cache_key)) {
      RequestTiming timing;
      timing.cache_hit = true;
      timing.total_us = MicrosSince(start, std::chrono::steady_clock::now());
      metrics_.RecordRequest(timing);
      metrics_.RecordOutcome(ServeOutcome::kOk);
      RecordLatencySample(timing.total_us);
      queued.promise.set_value(std::move(*hit));
      return future;
    }
  }

  // Overload: shedding a request we cannot serve in time is cheaper for
  // everyone than queueing it — the caller gets a fast, typed, retryable
  // answer instead of a slow deadline error.
  std::string shed_detail;
  if (ShouldShed(&shed_detail)) {
    metrics_.RecordShed();
    return reject(Status::ResourceExhausted("admission control shed request (" +
                                            shed_detail + ")"));
  }

  queued.graph = g;
  if (Status s = batcher_->Submit(std::move(queued)); !s.ok()) {
    // Submit only fails before moving the request into the queue, so the
    // promise is still ours to fulfill.
    metrics_.RecordRejected();
    return reject(std::move(s));
  }
  return future;
}

StatusOr<Prediction> InferenceEngine::Classify(const graph::Graph& g,
                                               const RequestOptions& request) {
  const RetryOptions& retry = options_.retry;
  int64_t backoff_us = retry.initial_backoff_us;
  for (int attempt = 1;; ++attempt) {
    StatusOr<Prediction> result = Submit(g, request).get();
    if (result.ok() || attempt >= retry.max_attempts ||
        !IsRetryable(result.status().code())) {
      return result;
    }
    if (request.deadline.has_value() &&
        std::chrono::steady_clock::now() +
                std::chrono::microseconds(backoff_us) >=
            *request.deadline) {
      // Backing off would blow the deadline; the transient error is the
      // better answer than a guaranteed DeadlineExceeded later.
      return result;
    }
    metrics_.RecordRetry();
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(
        retry.max_backoff_us,
        static_cast<int64_t>(static_cast<double>(backoff_us) *
                             retry.backoff_multiplier));
  }
}

void InferenceEngine::Drain() { batcher_->Drain(); }

void InferenceEngine::HandleBatch(std::vector<ServeRequest>&& batch,
                                  size_t queue_depth_after) {
  DEEPMAP_TRACE_SPAN("serve.batch", "serve");
  const size_t n = batch.size();
  const auto dispatch_time = std::chrono::steady_clock::now();
  metrics_.RecordBatch(static_cast<int>(n));
  metrics_.RecordQueueDepth(queue_depth_after);

  // Whole-batch fault: models a dispatcher-side failure after dequeue. The
  // per-request degradation/error path below still answers every promise.
  Status batch_fault;
  if (DEEPMAP_FAILPOINT_TRIGGERED("serve.engine.batch")) {
    batch_fault = Status::Unavailable(
        "injected fault at serve.engine.batch (stage=dispatch)");
  }

  // Stage 1: preprocess every live graph of the batch on the thread pool.
  // Requests whose deadline already passed are skipped before costing any
  // preprocessing work.
  std::vector<Status> statuses(n);
  std::vector<const char*> deadline_stage(n, nullptr);
  std::vector<nn::Tensor> inputs(n);
  std::vector<double> preprocess_us(n, 0.0);
  Preprocessor& preprocessor = model_->preprocessor();
  for (size_t i = 0; i < n; ++i) {
    if (!batch_fault.ok()) {
      statuses[i] = batch_fault;
      continue;
    }
    if (Expired(batch[i].deadline)) {
      statuses[i] = DeadlineError("preprocess");
      deadline_stage[i] = "preprocess";
      continue;
    }
    pool_.Submit([&, i] {
      DEEPMAP_TRACE_SPAN("serve.preprocess", "serve");
      const auto t0 = std::chrono::steady_clock::now();
      StatusOr<nn::Tensor> result = preprocessor.Preprocess(batch[i].graph);
      if (result.ok()) {
        inputs[i] = std::move(result).value();
      } else {
        statuses[i] = result.status();
      }
      preprocess_us[i] = MicrosSince(t0, std::chrono::steady_clock::now());
    });
  }
  pool_.Wait();

  // Sync point between the pipeline stages (bool intentionally unused):
  // tests park here to expire deadlines after preprocessing but before the
  // forward pass, pinning stage attribution deterministically.
  (void)DEEPMAP_FAILPOINT_TRIGGERED("serve.engine.before_forward");

  // Stage 2: batched forward pass over requests that survived preprocessing
  // and still have time left, sharded across the pool. Each shard reuses
  // one scratch workspace for its whole slice.
  std::vector<size_t> valid;
  valid.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) continue;
    if (Expired(batch[i].deadline)) {
      statuses[i] = DeadlineError("forward");
      deadline_stage[i] = "forward";
      continue;
    }
    valid.push_back(i);
  }
  std::vector<Prediction> predictions(n);
  std::vector<double> forward_us(n, 0.0);
  if (!valid.empty()) {
    const CompiledModel& compiled = model_->compiled();
    const size_t num_shards =
        std::min(std::max<size_t>(pool_.num_threads(), 1), valid.size());
    const size_t per_shard = (valid.size() + num_shards - 1) / num_shards;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      const size_t begin = shard * per_shard;
      const size_t end = std::min(valid.size(), begin + per_shard);
      if (begin >= end) break;
      pool_.Submit([&, begin, end] {
        DEEPMAP_TRACE_SPAN("serve.forward", "serve");
        ForwardScratch scratch;
        for (size_t v = begin; v < end; ++v) {
          const size_t i = valid[v];
          if (DEEPMAP_FAILPOINT_TRIGGERED("serve.forward")) {
            statuses[i] = Status::Unavailable(
                "injected fault at serve.forward (stage=forward)");
            continue;
          }
          const auto t0 = std::chrono::steady_clock::now();
          predictions[i] = compiled.Predict(inputs[i], &scratch);
          forward_us[i] = MicrosSince(t0, std::chrono::steady_clock::now());
        }
      });
    }
    pool_.Wait();
  }

  // Stage 3: warm the cache, fulfill promises (degrading model-path
  // failures when enabled), record metrics. Every promise in the batch is
  // resolved exactly once on every path through this loop.
  DEEPMAP_TRACE_SPAN("serve.complete", "serve");
  for (size_t i = 0; i < n; ++i) {
    RequestTiming timing;
    timing.queue_us = MicrosSince(batch[i].enqueue_time, dispatch_time);
    timing.preprocess_us = preprocess_us[i];
    timing.forward_us = forward_us[i];
    timing.total_us = MicrosSince(batch[i].enqueue_time,
                                  std::chrono::steady_clock::now());
    metrics_.RecordRequest(timing);
    RecordLatencySample(timing.total_us);
    if (statuses[i].ok()) {
      if (options_.cache_capacity > 0 && !batch[i].cache_key.empty()) {
        cache_.Insert(batch[i].cache_key, predictions[i]);
      }
      metrics_.RecordOutcome(ServeOutcome::kOk);
      batch[i].promise.set_value(std::move(predictions[i]));
      continue;
    }
    const StatusCode code = statuses[i].code();
    if (code == StatusCode::kDeadlineExceeded) {
      metrics_.RecordDeadlineExceeded(
          deadline_stage[i] != nullptr ? deadline_stage[i] : "unknown");
      batch[i].promise.set_value(StatusOr<Prediction>(statuses[i]));
      continue;
    }
    if (options_.enable_degraded && Degradable(code)) {
      // Stale-ok cache answer: the key may have been warmed by a sibling
      // request (or the admission lookup may have hit an injected outage)
      // since this request was admitted.
      if (!batch[i].cache_key.empty()) {
        if (std::optional<Prediction> stale = cache_.Lookup(batch[i].cache_key)) {
          stale->source = PredictionSource::kStaleCache;
          metrics_.RecordDegradedStale();
          batch[i].promise.set_value(std::move(*stale));
          continue;
        }
      }
      metrics_.RecordDegradedFallback();
      batch[i].promise.set_value(model_->fallback_prediction());
      continue;
    }
    metrics_.RecordOutcome(ServeOutcome::kError);
    batch[i].promise.set_value(StatusOr<Prediction>(statuses[i]));
  }
}

}  // namespace deepmap::serve
