#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace deepmap::serve {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

bool Expired(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= deadline;
}

Status DeadlineError(const char* stage) {
  return Status::DeadlineExceeded(
      std::string("request deadline expired (stage=") + stage + ")");
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<ServableModel> model,
                                 const Options& options)
    : model_(std::move(model)),
      options_(options),
      metrics_(options.metrics_registry),
      cache_(options.cache_capacity, options.cache_shards,
             &metrics_.registry()),
      pool_(options.num_threads),
      servable_(model_),
      pipeline_(&servable_, &pool_, &cache_, &metrics_,
                options.enable_degraded,
                BatchPipeline::Hooks{
                    [this](double total_us) { RecordLatencySample(total_us); },
                    /*on_complete=*/nullptr}),
      admission_rng_(options.admission.seed),
      dynamic_graphs_(options.cache_wl_iterations) {
  DEEPMAP_CHECK(model_ != nullptr);
  DEEPMAP_LOG(Info) << "InferenceEngine serving model '" << model_->name()
                    << "' via backend '" << model_->backend_name() << "'";
  batcher_ = std::make_unique<MicroBatcher>(
      options_.batcher,
      [this](std::vector<ServeRequest>&& batch, size_t depth_after) {
        pipeline_.Execute(std::move(batch), depth_after);
      });
}

InferenceEngine::~InferenceEngine() {
  // MicroBatcher::~MicroBatcher drains the queue through HandleBatch, which
  // still needs pool_/cache_/metrics_ — stop it before anything else dies.
  batcher_->Stop();
}

void InferenceEngine::RecordLatencySample(double total_us) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_window_[latency_next_] = total_us;
  latency_next_ = (latency_next_ + 1) % kP95Window;
  ++latency_count_;
  if (latency_count_ < kP95Refresh || latency_count_ % kP95Refresh != 0) {
    return;
  }
  const size_t filled = std::min(latency_count_, kP95Window);
  std::array<double, kP95Window> scratch;
  std::copy(latency_window_.begin(),
            latency_window_.begin() + static_cast<ptrdiff_t>(filled),
            scratch.begin());
  size_t rank = static_cast<size_t>(0.95 * static_cast<double>(filled));
  if (rank >= filled) rank = filled - 1;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<ptrdiff_t>(rank),
                   scratch.begin() + static_cast<ptrdiff_t>(filled));
  p95_us_.store(scratch[rank], std::memory_order_relaxed);
}

bool InferenceEngine::ShouldShed(std::string* detail) {
  const AdmissionOptions& admission = options_.admission;
  double shed_probability = 0.0;
  const size_t depth = batcher_->queue_depth();
  const size_t capacity = options_.batcher.queue_capacity;
  if (admission.queue_shed_watermark < 1.0 && capacity > 0) {
    const double utilization =
        static_cast<double>(depth) / static_cast<double>(capacity);
    if (utilization >= admission.queue_shed_watermark) {
      shed_probability = (utilization - admission.queue_shed_watermark) /
                         (1.0 - admission.queue_shed_watermark);
    }
  }
  const double p95 = observed_p95_us();
  if (admission.p95_target_us > 0.0 && p95 > admission.p95_target_us) {
    // Ramp: certain shed at 2x the latency target.
    shed_probability = std::max(
        shed_probability, std::min(1.0, p95 / admission.p95_target_us - 1.0));
  }
  if (shed_probability <= 0.0) return false;
  bool shed = shed_probability >= 1.0;
  if (!shed) {
    std::lock_guard<std::mutex> lock(admission_mu_);
    shed = admission_rng_.Bernoulli(shed_probability);
  }
  if (shed && detail != nullptr) {
    *detail = "queue depth " + std::to_string(depth) + "/" +
              std::to_string(capacity) + ", observed p95 " +
              std::to_string(static_cast<int64_t>(p95)) + "us";
  }
  return shed;
}

std::future<StatusOr<Prediction>> InferenceEngine::Submit(
    const graph::Graph& g, const RequestOptions& request) {
  return SubmitPrepared(g, request, std::string(), /*lookup_cache=*/true);
}

std::future<StatusOr<Prediction>> InferenceEngine::SubmitPrepared(
    const graph::Graph& g, const RequestOptions& request,
    std::string cache_key, bool lookup_cache) {
  // Covers admission + cache lookup + enqueue; queue/preprocess/forward time
  // shows up under the dispatcher's serve.batch span instead.
  DEEPMAP_TRACE_SPAN("serve.submit", "serve");
  const auto start = std::chrono::steady_clock::now();
  ServeRequest queued;
  queued.enqueue_time = start;
  queued.tenant = request.tenant;
  if (request.deadline.has_value()) queued.deadline = *request.deadline;
  std::future<StatusOr<Prediction>> future = queued.promise.get_future();

  auto reject = [&](Status status) {
    std::promise<StatusOr<Prediction>> rejected;
    std::future<StatusOr<Prediction>> f = rejected.get_future();
    rejected.set_value(StatusOr<Prediction>(std::move(status)));
    return f;
  };

  // Stage "admission": a request that arrives already expired never costs a
  // hash, a queue slot, or a batch.
  if (Expired(queued.deadline)) {
    metrics_.RecordDeadlineExceeded("admission");
    return reject(DeadlineError("admission"));
  }

  if (options_.cache_capacity > 0) {
    queued.cache_key =
        cache_key.empty()
            ? PredictionCache::KeyFor(g, options_.cache_wl_iterations)
            : std::move(cache_key);
    if (lookup_cache) {
      if (std::optional<Prediction> hit = cache_.Lookup(queued.cache_key)) {
        RequestTiming timing;
        timing.cache_hit = true;
        timing.total_us = MicrosSince(start, std::chrono::steady_clock::now());
        metrics_.RecordRequest(timing);
        metrics_.RecordOutcome(ServeOutcome::kOk);
        RecordLatencySample(timing.total_us);
        queued.promise.set_value(std::move(*hit));
        return future;
      }
    }
  }

  // Overload: shedding a request we cannot serve in time is cheaper for
  // everyone than queueing it — the caller gets a fast, typed, retryable
  // answer instead of a slow deadline error.
  std::string shed_detail;
  if (ShouldShed(&shed_detail)) {
    metrics_.RecordShed();
    return reject(Status::ResourceExhausted("admission control shed request (" +
                                            shed_detail + ")"));
  }

  queued.graph = g;
  if (Status s = batcher_->Submit(std::move(queued)); !s.ok()) {
    // Submit only fails before moving the request into the queue, so the
    // promise is still ours to fulfill.
    metrics_.RecordRejected();
    return reject(std::move(s));
  }
  return future;
}

StatusOr<Prediction> InferenceEngine::Classify(const graph::Graph& g,
                                               const RequestOptions& request) {
  const RetryOptions& retry = options_.retry;
  int64_t backoff_us = retry.initial_backoff_us;
  for (int attempt = 1;; ++attempt) {
    StatusOr<Prediction> result = Submit(g, request).get();
    if (result.ok() || attempt >= retry.max_attempts ||
        !IsRetryable(result.status().code())) {
      return result;
    }
    if (request.deadline.has_value() &&
        std::chrono::steady_clock::now() +
                std::chrono::microseconds(backoff_us) >=
            *request.deadline) {
      // Backing off would blow the deadline; the transient error is the
      // better answer than a guaranteed DeadlineExceeded later.
      return result;
    }
    metrics_.RecordRetry();
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(
        retry.max_backoff_us,
        static_cast<int64_t>(static_cast<double>(backoff_us) *
                             retry.backoff_multiplier));
  }
}

Status InferenceEngine::RegisterDynamicGraph(const std::string& id,
                                             graph::Graph g) {
  return dynamic_graphs_.Register(id, std::move(g));
}

Status InferenceEngine::UnregisterDynamicGraph(const std::string& id) {
  return dynamic_graphs_.Unregister(id);
}

StatusOr<Prediction> InferenceEngine::ClassifyDelta(
    const std::string& id, const std::vector<graph::EdgeUpdate>& updates,
    const RequestOptions& request) {
  DEEPMAP_TRACE_SPAN("serve.classify_delta", "serve");
  const auto start = std::chrono::steady_clock::now();
  if (request.deadline.has_value() && Expired(*request.deadline)) {
    metrics_.RecordDeadlineExceeded("admission");
    return DeadlineError("admission");
  }
  StatusOr<DeltaResult> delta = dynamic_graphs_.ApplyDelta(id, updates);
  if (!delta.ok()) return delta.status();
  metrics_.RecordDynamicUpdate(delta.value().applied);
  if (options_.cache_capacity > 0) {
    // Exact invalidation: only the pre-delta structure's entry is stale.
    // (A no-op delta leaves the keys equal — never drop a live entry.)
    if (delta.value().old_key != delta.value().new_key) {
      cache_.Erase(delta.value().old_key);
    }
    if (std::optional<Prediction> hit = cache_.Lookup(delta.value().new_key)) {
      metrics_.RecordDynamicIncrementalHit();
      RequestTiming timing;
      timing.cache_hit = true;
      timing.total_us = MicrosSince(start, std::chrono::steady_clock::now());
      metrics_.RecordRequest(timing);
      metrics_.RecordOutcome(ServeOutcome::kOk);
      RecordLatencySample(timing.total_us);
      return std::move(*hit);
    }
  }
  // Miss: full pipeline on the mutated snapshot, reusing the key the store
  // already computed and skipping the second lookup (the miss above is the
  // one the cache counters should see).
  metrics_.RecordDynamicFullRecompute();
  return SubmitPrepared(delta.value().graph, request,
                        std::move(delta.value().new_key),
                        /*lookup_cache=*/false)
      .get();
}

void InferenceEngine::Drain() { batcher_->Drain(); }

}  // namespace deepmap::serve
