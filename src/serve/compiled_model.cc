#include "serve/compiled_model.h"

#include <cmath>

namespace deepmap::serve {
namespace {

/// Index of the first nonzero entry, or -1 when the row is all zeros.
inline int FirstNonZero(const float* row, int m) {
  for (int c = 0; c < m; ++c) {
    if (row[c] != 0.0f) return c;
  }
  return -1;
}

Status ShapeError(const char* name, const nn::Tensor& got,
                  const std::vector<int>& want) {
  std::string msg = "compiled-model parameter '";
  msg += name;
  msg += "' has shape " + got.ShapeString() + ", expected [";
  for (size_t i = 0; i < want.size(); ++i) {
    if (i > 0) msg += "x";
    msg += std::to_string(want[i]);
  }
  msg += "]";
  return Status::InvalidArgument(msg);
}

Status CheckShape(const char* name, const nn::Tensor& t,
                  const std::vector<int>& want) {
  if (t.shape() != want) return ShapeError(name, t, want);
  return Status::Ok();
}

}  // namespace

StatusOr<CompiledModel> CompiledModel::Compile(
    core::DeepMapModel& model, const core::DeepMapConfig& config,
    int feature_dim, int sequence_length, int num_classes,
    const nn::InferenceBackend* backend) {
  if (feature_dim <= 0 || sequence_length <= 0 || num_classes <= 0) {
    return Status::InvalidArgument("compiled model needs positive dimensions");
  }
  CompiledModel cm;
  cm.backend_ = backend != nullptr ? backend : &nn::Fp32Backend();
  cm.m_ = feature_dim;
  cm.w_ = sequence_length;
  cm.r_ = config.receptive_field_size;
  cm.c1_ = config.conv1_channels;
  cm.c2_ = config.conv2_channels;
  cm.c3_ = config.conv3_channels;
  cm.dense_units_ = config.dense_units;
  cm.num_classes_ = num_classes;
  cm.readout_ = config.readout;
  cm.readout_dim_ = config.readout == core::ReadoutKind::kConcat
                        ? config.conv3_channels * sequence_length
                        : config.conv3_channels;

  std::vector<nn::Param> params = model.Params();
  if (params.size() != 10) {
    return Status::InvalidArgument(
        "unexpected parameter count for a DEEPMAP network: got " +
        std::to_string(params.size()) + ", expected 10");
  }
  struct Slot {
    const char* name;
    std::unique_ptr<nn::PackedWeights>* packed;  // set for weight matrices
    nn::Tensor* bias;                            // set for bias vectors
    std::vector<int> shape;
  };
  const Slot slots[] = {
      {"conv1.weights", &cm.conv1_p_, nullptr, {cm.c1_, cm.r_ * cm.m_}},
      {"conv1.bias", nullptr, &cm.conv1_b_, {cm.c1_}},
      {"conv2.weights", &cm.conv2_p_, nullptr, {cm.c2_, cm.c1_}},
      {"conv2.bias", nullptr, &cm.conv2_b_, {cm.c2_}},
      {"conv3.weights", &cm.conv3_p_, nullptr, {cm.c3_, cm.c2_}},
      {"conv3.bias", nullptr, &cm.conv3_b_, {cm.c3_}},
      {"dense1.weights", &cm.dense1_p_, nullptr, {cm.dense_units_, cm.readout_dim_}},
      {"dense1.bias", nullptr, &cm.dense1_b_, {cm.dense_units_}},
      {"dense2.weights", &cm.dense2_p_, nullptr, {cm.num_classes_, cm.dense_units_}},
      {"dense2.bias", nullptr, &cm.dense2_b_, {cm.num_classes_}},
  };
  for (size_t i = 0; i < params.size(); ++i) {
    if (Status s = CheckShape(slots[i].name, *params[i].value, slots[i].shape);
        !s.ok()) {
      return s;
    }
    if (slots[i].packed != nullptr) {
      *slots[i].packed = cm.backend_->Pack(*params[i].value);
    } else {
      *slots[i].bias = *params[i].value;
    }
  }

  // Constant activations of an all-zero slot: conv bias -> ReLU chained
  // through the pointwise convolutions, computed through the same backend so
  // dummy slots and populated slots round identically.
  const nn::InferenceBackend& be = *cm.backend_;
  cm.dummy1_.assign(cm.conv1_b_.data(), cm.conv1_b_.data() + cm.c1_);
  be.Relu(cm.dummy1_.data(), cm.c1_);
  cm.dummy2_.resize(static_cast<size_t>(cm.c2_));
  be.ConvForward(*cm.conv2_p_, cm.conv2_b_.data(), cm.dummy1_.data(),
                 cm.dummy2_.data());
  be.Relu(cm.dummy2_.data(), cm.c2_);
  cm.dummy3_.resize(static_cast<size_t>(cm.c3_));
  be.ConvForward(*cm.conv3_p_, cm.conv3_b_.data(), cm.dummy2_.data(),
                 cm.dummy3_.data());
  be.Relu(cm.dummy3_.data(), cm.c3_);
  return cm;
}

size_t CompiledModel::PackedWeightBytes() const {
  return conv1_p_->MemoryBytes() + conv2_p_->MemoryBytes() +
         conv3_p_->MemoryBytes() + dense1_p_->MemoryBytes() +
         dense2_p_->MemoryBytes();
}

void CompiledModel::ForwardInto(const nn::Tensor& input,
                                ForwardScratch* scratch) const {
  DEEPMAP_CHECK_EQ(input.rank(), 2);
  DEEPMAP_CHECK_EQ(input.dim(0), w_ * r_);
  DEEPMAP_CHECK_EQ(input.dim(1), m_);
  const float* x = input.data();
  const nn::InferenceBackend& be = *backend_;
  const bool concat = readout_ == core::ReadoutKind::kConcat;
  scratch->readout.assign(static_cast<size_t>(readout_dim_), 0.0f);
  scratch->h1.resize(static_cast<size_t>(c1_));
  scratch->h2.resize(static_cast<size_t>(c2_));
  scratch->h3.resize(static_cast<size_t>(c3_));

  for (int s = 0; s < w_; ++s) {
    // Conv1 over this slot's window, visiting only nonzero input rows. With
    // the fp32 backend the accumulation order per output channel matches
    // nn::Conv1D (bias first, then weights in ascending (pos, feature)
    // order), so skipping exact zeros leaves the sums bit-identical.
    bool any_row = false;
    for (int pos = 0; pos < r_; ++pos) {
      const float* row = x + (static_cast<size_t>(s) * r_ + pos) * m_;
      const int c0 = FirstNonZero(row, m_);
      if (c0 < 0) continue;
      if (!any_row) {
        for (int o = 0; o < c1_; ++o) {
          scratch->h1[static_cast<size_t>(o)] = conv1_b_.data()[o];
        }
        any_row = true;
      }
      be.AccumulateDot(*conv1_p_, pos * m_ + c0, m_ - c0, row + c0,
                       scratch->h1.data());
    }

    const std::vector<float>* h3 = &dummy3_;
    if (any_row) {
      be.Relu(scratch->h1.data(), c1_);
      be.ConvForward(*conv2_p_, conv2_b_.data(), scratch->h1.data(),
                     scratch->h2.data());
      be.Relu(scratch->h2.data(), c2_);
      be.ConvForward(*conv3_p_, conv3_b_.data(), scratch->h2.data(),
                     scratch->h3.data());
      be.Relu(scratch->h3.data(), c3_);
      h3 = &scratch->h3;
    }
    if (concat) {
      float* dst = scratch->readout.data() + static_cast<size_t>(s) * c3_;
      for (int c = 0; c < c3_; ++c) dst[c] = (*h3)[static_cast<size_t>(c)];
    } else {
      // Sequential slot-order accumulation mirrors nn::SumPool/MeanPool.
      for (int c = 0; c < c3_; ++c) {
        scratch->readout[static_cast<size_t>(c)] += (*h3)[static_cast<size_t>(c)];
      }
    }
  }
  if (readout_ == core::ReadoutKind::kMean) {
    // nn::MeanPool divides the slot sum by the pooled length w.
    const float inv = 1.0f / static_cast<float>(w_);
    for (float& v : scratch->readout) v *= inv;
  }

  scratch->hidden.resize(static_cast<size_t>(dense_units_));
  be.DenseForward(*dense1_p_, dense1_b_.data(), scratch->readout.data(),
                  scratch->hidden.data());
  be.Relu(scratch->hidden.data(), dense_units_);
  // Dropout is identity at inference.
  scratch->logits.resize(static_cast<size_t>(num_classes_));
  be.DenseForward(*dense2_p_, dense2_b_.data(), scratch->hidden.data(),
                  scratch->logits.data());
}

Prediction CompiledModel::Predict(const nn::Tensor& input,
                                  ForwardScratch* scratch) const {
  ForwardInto(input, scratch);
  const std::vector<float>& logits = scratch->logits;
  Prediction p;
  // Argmax with Tensor::ArgMax's tie-break (first maximum wins).
  int best = 0;
  for (int i = 1; i < num_classes_; ++i) {
    if (logits[static_cast<size_t>(i)] > logits[static_cast<size_t>(best)]) {
      best = i;
    }
  }
  p.label = best;
  // Numerically stable softmax.
  p.probabilities.resize(static_cast<size_t>(num_classes_));
  const float max_logit = logits[static_cast<size_t>(best)];
  double total = 0.0;
  for (int i = 0; i < num_classes_; ++i) {
    const double e = std::exp(static_cast<double>(logits[i] - max_logit));
    p.probabilities[static_cast<size_t>(i)] = static_cast<float>(e);
    total += e;
  }
  const float inv = static_cast<float>(1.0 / total);
  for (float& v : p.probabilities) v *= inv;
  return p;
}

nn::Tensor CompiledModel::Logits(const nn::Tensor& input,
                                 ForwardScratch* scratch) const {
  ForwardInto(input, scratch);
  return nn::Tensor::FromFlat(scratch->logits);
}

void CompiledModel::PredictRange(const std::vector<nn::Tensor>& inputs,
                                 size_t begin, size_t end,
                                 ForwardScratch* scratch,
                                 std::vector<Prediction>* predictions) const {
  DEEPMAP_CHECK_LE(end, inputs.size());
  DEEPMAP_CHECK_LE(end, predictions->size());
  for (size_t i = begin; i < end; ++i) {
    (*predictions)[i] = Predict(inputs[i], scratch);
  }
}

}  // namespace deepmap::serve
