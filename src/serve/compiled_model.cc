#include "serve/compiled_model.h"

#include <cmath>

namespace deepmap::serve {
namespace {

/// Mirrors nn::Relu (strictly-negative values clamp; -0.0f passes through,
/// which keeps the compiled chain bit-identical to the layer stack).
inline void ReluInPlace(std::vector<float>& v) {
  for (float& x : v) {
    if (x < 0.0f) x = 0.0f;
  }
}

/// Pointwise conv (kernel 1): out[o] = bias[o] + sum_i w[o][i] * in[i],
/// accumulated in the same order as nn::Conv1D::Forward.
inline void PointwiseConv(const nn::Tensor& weights, const nn::Tensor& bias,
                          const std::vector<float>& in,
                          std::vector<float>& out) {
  const int out_channels = bias.dim(0);
  const int in_channels = weights.dim(1);
  out.resize(static_cast<size_t>(out_channels));
  const float* w = weights.data();
  for (int o = 0; o < out_channels; ++o) {
    float sum = bias.data()[o];
    const float* wo = w + static_cast<size_t>(o) * in_channels;
    for (int i = 0; i < in_channels; ++i) sum += wo[i] * in[i];
    out[static_cast<size_t>(o)] = sum;
  }
}

/// Dense layer in nn::Dense order: full weight sum first, bias added last.
inline void DenseForward(const nn::Tensor& weights, const nn::Tensor& bias,
                         const std::vector<float>& in,
                         std::vector<float>& out) {
  const int out_features = bias.dim(0);
  const int in_features = weights.dim(1);
  out.resize(static_cast<size_t>(out_features));
  const float* w = weights.data();
  for (int o = 0; o < out_features; ++o) {
    float sum = 0.0f;
    const float* wo = w + static_cast<size_t>(o) * in_features;
    for (int t = 0; t < in_features; ++t) sum += in[t] * wo[t];
    out[static_cast<size_t>(o)] = sum + bias.data()[o];
  }
}

/// Index of the first nonzero entry, or -1 when the row is all zeros.
inline int FirstNonZero(const float* row, int m) {
  for (int c = 0; c < m; ++c) {
    if (row[c] != 0.0f) return c;
  }
  return -1;
}

Status ShapeError(const char* name, const nn::Tensor& got,
                  const std::vector<int>& want) {
  std::string msg = "compiled-model parameter '";
  msg += name;
  msg += "' has shape " + got.ShapeString() + ", expected [";
  for (size_t i = 0; i < want.size(); ++i) {
    if (i > 0) msg += "x";
    msg += std::to_string(want[i]);
  }
  msg += "]";
  return Status::InvalidArgument(msg);
}

Status CheckShape(const char* name, const nn::Tensor& t,
                  const std::vector<int>& want) {
  if (t.shape() != want) return ShapeError(name, t, want);
  return Status::Ok();
}

}  // namespace

StatusOr<CompiledModel> CompiledModel::Compile(core::DeepMapModel& model,
                                               const core::DeepMapConfig& config,
                                               int feature_dim,
                                               int sequence_length,
                                               int num_classes) {
  if (feature_dim <= 0 || sequence_length <= 0 || num_classes <= 0) {
    return Status::InvalidArgument("compiled model needs positive dimensions");
  }
  CompiledModel cm;
  cm.m_ = feature_dim;
  cm.w_ = sequence_length;
  cm.r_ = config.receptive_field_size;
  cm.c1_ = config.conv1_channels;
  cm.c2_ = config.conv2_channels;
  cm.c3_ = config.conv3_channels;
  cm.dense_units_ = config.dense_units;
  cm.num_classes_ = num_classes;
  cm.readout_ = config.readout;
  cm.readout_dim_ = config.readout == core::ReadoutKind::kConcat
                        ? config.conv3_channels * sequence_length
                        : config.conv3_channels;

  std::vector<nn::Param> params = model.Params();
  if (params.size() != 10) {
    return Status::InvalidArgument(
        "unexpected parameter count for a DEEPMAP network: got " +
        std::to_string(params.size()) + ", expected 10");
  }
  struct Slot {
    const char* name;
    nn::Tensor* dst;
    std::vector<int> shape;
  };
  const Slot slots[] = {
      {"conv1.weights", &cm.conv1_w_, {cm.c1_, cm.r_ * cm.m_}},
      {"conv1.bias", &cm.conv1_b_, {cm.c1_}},
      {"conv2.weights", &cm.conv2_w_, {cm.c2_, cm.c1_}},
      {"conv2.bias", &cm.conv2_b_, {cm.c2_}},
      {"conv3.weights", &cm.conv3_w_, {cm.c3_, cm.c2_}},
      {"conv3.bias", &cm.conv3_b_, {cm.c3_}},
      {"dense1.weights", &cm.dense1_w_, {cm.dense_units_, cm.readout_dim_}},
      {"dense1.bias", &cm.dense1_b_, {cm.dense_units_}},
      {"dense2.weights", &cm.dense2_w_, {cm.num_classes_, cm.dense_units_}},
      {"dense2.bias", &cm.dense2_b_, {cm.num_classes_}},
  };
  for (size_t i = 0; i < params.size(); ++i) {
    if (Status s = CheckShape(slots[i].name, *params[i].value, slots[i].shape);
        !s.ok()) {
      return s;
    }
    *slots[i].dst = *params[i].value;
  }

  // Constant activations of an all-zero slot: conv bias -> ReLU chained
  // through the pointwise convolutions, exactly as the layer stack computes
  // them for dummy rows.
  cm.dummy1_.assign(cm.conv1_b_.data(), cm.conv1_b_.data() + cm.c1_);
  ReluInPlace(cm.dummy1_);
  PointwiseConv(cm.conv2_w_, cm.conv2_b_, cm.dummy1_, cm.dummy2_);
  ReluInPlace(cm.dummy2_);
  PointwiseConv(cm.conv3_w_, cm.conv3_b_, cm.dummy2_, cm.dummy3_);
  ReluInPlace(cm.dummy3_);
  return cm;
}

void CompiledModel::ForwardInto(const nn::Tensor& input,
                                ForwardScratch* scratch) const {
  DEEPMAP_CHECK_EQ(input.rank(), 2);
  DEEPMAP_CHECK_EQ(input.dim(0), w_ * r_);
  DEEPMAP_CHECK_EQ(input.dim(1), m_);
  const float* x = input.data();
  const bool concat = readout_ == core::ReadoutKind::kConcat;
  scratch->readout.assign(static_cast<size_t>(readout_dim_), 0.0f);
  scratch->h1.resize(static_cast<size_t>(c1_));

  for (int s = 0; s < w_; ++s) {
    // Conv1 over this slot's window, visiting only nonzero input rows. The
    // accumulation order per output channel matches nn::Conv1D (bias first,
    // then weights in ascending (pos, feature) order), so skipping exact
    // zeros leaves the sums bit-identical.
    bool any_row = false;
    for (int pos = 0; pos < r_; ++pos) {
      const float* row = x + (static_cast<size_t>(s) * r_ + pos) * m_;
      const int c0 = FirstNonZero(row, m_);
      if (c0 < 0) continue;
      if (!any_row) {
        for (int o = 0; o < c1_; ++o) {
          scratch->h1[static_cast<size_t>(o)] = conv1_b_.data()[o];
        }
        any_row = true;
      }
      for (int o = 0; o < c1_; ++o) {
        const float* wo = conv1_w_.data() +
                          (static_cast<size_t>(o) * r_ + pos) * m_;
        float sum = scratch->h1[static_cast<size_t>(o)];
        for (int c = c0; c < m_; ++c) sum += wo[c] * row[c];
        scratch->h1[static_cast<size_t>(o)] = sum;
      }
    }

    const std::vector<float>* h3 = &dummy3_;
    if (any_row) {
      ReluInPlace(scratch->h1);
      PointwiseConv(conv2_w_, conv2_b_, scratch->h1, scratch->h2);
      ReluInPlace(scratch->h2);
      PointwiseConv(conv3_w_, conv3_b_, scratch->h2, scratch->h3);
      ReluInPlace(scratch->h3);
      h3 = &scratch->h3;
    }
    if (concat) {
      float* dst = scratch->readout.data() + static_cast<size_t>(s) * c3_;
      for (int c = 0; c < c3_; ++c) dst[c] = (*h3)[static_cast<size_t>(c)];
    } else {
      // Sequential slot-order accumulation mirrors nn::SumPool/MeanPool.
      for (int c = 0; c < c3_; ++c) {
        scratch->readout[static_cast<size_t>(c)] += (*h3)[static_cast<size_t>(c)];
      }
    }
  }
  if (readout_ == core::ReadoutKind::kMean) {
    // nn::MeanPool divides the slot sum by the pooled length w.
    const float inv = 1.0f / static_cast<float>(w_);
    for (float& v : scratch->readout) v *= inv;
  }

  DenseForward(dense1_w_, dense1_b_, scratch->readout, scratch->hidden);
  ReluInPlace(scratch->hidden);
  // Dropout is identity at inference.
  DenseForward(dense2_w_, dense2_b_, scratch->hidden, scratch->logits);
}

Prediction CompiledModel::Predict(const nn::Tensor& input,
                                  ForwardScratch* scratch) const {
  ForwardInto(input, scratch);
  const std::vector<float>& logits = scratch->logits;
  Prediction p;
  // Argmax with Tensor::ArgMax's tie-break (first maximum wins).
  int best = 0;
  for (int i = 1; i < num_classes_; ++i) {
    if (logits[static_cast<size_t>(i)] > logits[static_cast<size_t>(best)]) {
      best = i;
    }
  }
  p.label = best;
  // Numerically stable softmax.
  p.probabilities.resize(static_cast<size_t>(num_classes_));
  const float max_logit = logits[static_cast<size_t>(best)];
  double total = 0.0;
  for (int i = 0; i < num_classes_; ++i) {
    const double e = std::exp(static_cast<double>(logits[i] - max_logit));
    p.probabilities[static_cast<size_t>(i)] = static_cast<float>(e);
    total += e;
  }
  const float inv = static_cast<float>(1.0 / total);
  for (float& v : p.probabilities) v *= inv;
  return p;
}

nn::Tensor CompiledModel::Logits(const nn::Tensor& input,
                                 ForwardScratch* scratch) const {
  ForwardInto(input, scratch);
  return nn::Tensor::FromFlat(scratch->logits);
}

void CompiledModel::PredictRange(const std::vector<nn::Tensor>& inputs,
                                 size_t begin, size_t end,
                                 ForwardScratch* scratch,
                                 std::vector<Prediction>* predictions) const {
  DEEPMAP_CHECK_LE(end, inputs.size());
  DEEPMAP_CHECK_LE(end, predictions->size());
  for (size_t i = begin; i < end; ++i) {
    (*predictions)[i] = Predict(inputs[i], scratch);
  }
}

}  // namespace deepmap::serve
