#include "serve/prediction_cache.h"

#include <algorithm>
#include <functional>

#include "common/failpoint.h"
#include "graph/isomorphism.h"

namespace deepmap::serve {

PredictionCache::PredictionCache(size_t capacity, size_t num_shards,
                                 obs::MetricsRegistry* registry)
    : capacity_(capacity) {
  // More shards than capacity slots would leave zero-slot shards whose key
  // slice silently never caches; clamp so every shard owns at least one
  // slot. Capacity 0 (cache disabled) degenerates to one empty shard.
  num_shards = std::clamp<size_t>(num_shards, 1, std::max<size_t>(capacity, 1));
  // Split the budget exactly: base slots everywhere, and the remainder
  // handed out one slot each to the first shards. The previous ceil
  // division gave EVERY shard the rounded-up quota, so a (capacity=10,
  // shards=4) cache could hold 12 entries.
  const size_t base = capacity / num_shards;
  const size_t remainder = capacity % num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < remainder ? 1 : 0);
    if (registry != nullptr) {
      const std::string prefix =
          "deepmap_serve_cache_shard" + std::to_string(i);
      shard->hits_counter = &registry->GetCounter(
          prefix + "_hits_total", "lookups answered by this cache shard");
      shard->misses_counter = &registry->GetCounter(
          prefix + "_misses_total", "lookups this cache shard missed");
      shard->evictions_counter = &registry->GetCounter(
          prefix + "_evictions_total", "LRU evictions from this cache shard");
    }
    shards_.push_back(std::move(shard));
  }
}

std::string PredictionCache::KeyFor(const graph::Graph& g,
                                    int wl_iterations) {
  return KeyFromFingerprint(g.NumVertices(), g.NumEdges(),
                            graph::WlHashFingerprint(g, wl_iterations));
}

std::string PredictionCache::KeyFromFingerprint(
    int num_vertices, int64_t num_edges, const std::string& fingerprint) {
  std::string key = std::to_string(num_vertices);
  key += ':';
  key += std::to_string(num_edges);
  key += ':';
  key += fingerprint;
  return key;
}

size_t PredictionCache::ShardIndexFor(const std::string& key) const {
  if (shards_.size() == 1) return 0;
  return std::hash<std::string>{}(key) % shards_.size();
}

std::optional<Prediction> PredictionCache::Lookup(const std::string& key) {
  Shard& shard = *shards_[ShardIndexFor(key)];
  // Simulated cache outage: the entry (if any) is unreachable, so the
  // request falls through to the full pipeline — same behavior as a miss.
  if (DEEPMAP_FAILPOINT_TRIGGERED("serve.cache.lookup")) {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.misses;
    if (shard.misses_counter != nullptr) shard.misses_counter->Increment();
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    if (shard.misses_counter != nullptr) shard.misses_counter->Increment();
    return std::nullopt;
  }
  ++shard.hits;
  if (shard.hits_counter != nullptr) shard.hits_counter->Increment();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
  return it->second->second;
}

void PredictionCache::Insert(const std::string& key, Prediction prediction) {
  if (capacity_ == 0) return;
  // Simulated cache outage on the write path: the warm-up is lost, which a
  // correct engine must tolerate (the next request just misses again).
  if (DEEPMAP_FAILPOINT_TRIGGERED("serve.cache.insert")) return;
  Shard& shard = *shards_[ShardIndexFor(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(prediction);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
    if (shard.evictions_counter != nullptr) {
      shard.evictions_counter->Increment();
    }
  }
  shard.lru.emplace_front(key, std::move(prediction));
  shard.index[key] = shard.lru.begin();
}

bool PredictionCache::Erase(const std::string& key) {
  Shard& shard = *shards_[ShardIndexFor(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  return true;
}

void PredictionCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t PredictionCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

int64_t PredictionCache::hits() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

int64_t PredictionCache::misses() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

int64_t PredictionCache::evictions() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->evictions;
  }
  return total;
}

int64_t PredictionCache::shard_hits(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->hits;
}

int64_t PredictionCache::shard_misses(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->misses;
}

int64_t PredictionCache::shard_evictions(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->evictions;
}

size_t PredictionCache::shard_size(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->lru.size();
}

std::vector<std::string> PredictionCache::KeysByRecency() const {
  std::vector<std::string> keys;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->lru) keys.push_back(e.first);
  }
  return keys;
}

}  // namespace deepmap::serve
