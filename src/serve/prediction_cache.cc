#include "serve/prediction_cache.h"

#include "common/failpoint.h"
#include "graph/isomorphism.h"

namespace deepmap::serve {

PredictionCache::PredictionCache(size_t capacity) : capacity_(capacity) {}

std::string PredictionCache::KeyFor(const graph::Graph& g,
                                    int wl_iterations) {
  std::string key = std::to_string(g.NumVertices());
  key += ':';
  key += std::to_string(g.NumEdges());
  key += ':';
  key += graph::WlFingerprint(g, wl_iterations);
  return key;
}

std::optional<Prediction> PredictionCache::Lookup(const std::string& key) {
  // Simulated cache outage: the entry (if any) is unreachable, so the
  // request falls through to the full pipeline — same behavior as a miss.
  if (DEEPMAP_FAILPOINT_TRIGGERED("serve.cache.lookup")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void PredictionCache::Insert(const std::string& key, Prediction prediction) {
  if (capacity_ == 0) return;
  // Simulated cache outage on the write path: the warm-up is lost, which a
  // correct engine must tolerate (the next request just misses again).
  if (DEEPMAP_FAILPOINT_TRIGGERED("serve.cache.insert")) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(prediction);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, std::move(prediction));
  index_[key] = lru_.begin();
}

size_t PredictionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

int64_t PredictionCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t PredictionCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t PredictionCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::vector<std::string> PredictionCache::KeysByRecency() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const Entry& e : lru_) keys.push_back(e.first);
  return keys;
}

}  // namespace deepmap::serve
