#include "serve/model_registry.h"

#include <utility>

#include "nn/serialization.h"

namespace deepmap::serve {

ServableModel::ServableModel(std::string name,
                             const graph::GraphDataset& reference,
                             const core::DeepMapConfig& config)
    : name_(std::move(name)),
      config_(config),
      num_classes_(reference.NumClasses()),
      preprocessor_(reference, config) {}

Status ModelRegistry::Load(const std::string& name,
                           const graph::GraphDataset& reference,
                           const core::DeepMapConfig& config,
                           const std::string& params_path) {
  auto servable = std::make_shared<ServableModel>(name, reference, config);
  core::DeepMapModel model(servable->feature_dim(),
                           servable->sequence_length(),
                           servable->num_classes(), config);
  if (Status s = nn::LoadParameters(model.Params(), params_path); !s.ok()) {
    return s;
  }
  StatusOr<CompiledModel> compiled = CompiledModel::Compile(
      model, config, servable->feature_dim(), servable->sequence_length(),
      servable->num_classes());
  if (!compiled.ok()) return compiled.status();
  servable->compiled_ =
      std::make_unique<CompiledModel>(std::move(compiled).value());
  return Register(name, std::move(servable));
}

Status ModelRegistry::Adopt(const std::string& name,
                            const graph::GraphDataset& reference,
                            const core::DeepMapConfig& config,
                            core::DeepMapModel& trained) {
  auto servable = std::make_shared<ServableModel>(name, reference, config);
  StatusOr<CompiledModel> compiled = CompiledModel::Compile(
      trained, config, servable->feature_dim(), servable->sequence_length(),
      servable->num_classes());
  if (!compiled.ok()) return compiled.status();
  servable->compiled_ =
      std::make_unique<CompiledModel>(std::move(compiled).value());
  return Register(name, std::move(servable));
}

Status ModelRegistry::Register(const std::string& name,
                               std::shared_ptr<ServableModel> servable) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = models_.emplace(name, std::move(servable));
  if (!inserted) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered");
  }
  return Status::Ok();
}

std::shared_ptr<ServableModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::Unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return Status::Ok();
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, servable] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace deepmap::serve
