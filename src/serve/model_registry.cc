#include "serve/model_registry.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "nn/serialization.h"

namespace deepmap::serve {
namespace {

constexpr char kBackendLoadsCounter[] = "deepmap_serve_backend_loads_total";
constexpr char kBackendFallbackCounter[] =
    "deepmap_serve_backend_fallback_total";

bool IsKnownBackend(const std::string& name) {
  const std::vector<std::string> known = nn::InferenceBackendNames();
  return std::find(known.begin(), known.end(), name) != known.end();
}

}  // namespace

ServableModel::ServableModel(std::string name,
                             const graph::GraphDataset& reference,
                             const core::DeepMapConfig& config)
    : name_(std::move(name)),
      config_(config),
      num_classes_(reference.NumClasses()),
      preprocessor_(reference, config) {
  // Majority-class fallback: empirical class priors of the reference
  // dataset, argmax label (lowest id wins ties, matching nn::Predict).
  fallback_.source = PredictionSource::kFallback;
  fallback_.probabilities.assign(static_cast<size_t>(num_classes_), 0.0f);
  for (int label : reference.labels()) {
    fallback_.probabilities[static_cast<size_t>(label)] += 1.0f;
  }
  const float total = static_cast<float>(reference.size());
  for (float& p : fallback_.probabilities) p /= total;
  fallback_.label = static_cast<int>(
      std::max_element(fallback_.probabilities.begin(),
                       fallback_.probabilities.end()) -
      fallback_.probabilities.begin());
}

ModelRegistry::ModelRegistry(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = metrics;
  }
}

Status ModelRegistry::CompileInto(ServableModel& servable,
                                  core::DeepMapModel& model,
                                  const graph::GraphDataset& reference,
                                  const Options& options) {
  const std::string requested =
      options.backend.empty() ? "fp32" : options.backend;
  BackendReport report;
  report.requested = requested;
  report.active = requested;

  const core::DeepMapConfig& config = servable.config();
  auto compile = [&](const nn::InferenceBackend* be) {
    return CompiledModel::Compile(model, config, servable.feature_dim(),
                                  servable.sequence_length(),
                                  servable.num_classes(), be);
  };

  if (requested == "fp32") {
    StatusOr<CompiledModel> compiled = compile(nullptr);
    if (!compiled.ok()) return compiled.status();
    servable.compiled_ =
        std::make_unique<CompiledModel>(std::move(compiled).value());
    servable.backend_report_ = report;
    metrics_->GetCounter(kBackendLoadsCounter).Increment();
    return Status::Ok();
  }

  StatusOr<std::unique_ptr<nn::InferenceBackend>> backend =
      nn::MakeInferenceBackend(requested);
  if (!backend.ok()) return backend.status();
  StatusOr<CompiledModel> quantized = compile(backend.value().get());
  if (!quantized.ok()) return quantized.status();

  bool fell_back = false;
  if (options.calibration_graphs <= 0) {
    // Guardrail disabled: install the requested backend unchecked.
    servable.backend_ = std::move(backend).value();
    servable.compiled_ =
        std::make_unique<CompiledModel>(std::move(quantized).value());
  } else {
    // Calibration guardrail: compare against the exact fp32 compile on the
    // first reference graphs that preprocess cleanly.
    StatusOr<CompiledModel> fp32 = compile(nullptr);
    if (!fp32.ok()) return fp32.status();
    ForwardScratch quant_scratch, fp32_scratch;
    const std::vector<graph::Graph>& graphs = reference.graphs();
    const int want = std::min<int>(options.calibration_graphs,
                                   static_cast<int>(graphs.size()));
    int used = 0;
    int disagreements = 0;
    float max_diff = 0.0f;
    for (size_t i = 0; i < graphs.size() && used < want; ++i) {
      StatusOr<nn::Tensor> input = servable.preprocessor_.Preprocess(graphs[i]);
      if (!input.ok()) continue;  // oversized/empty graphs can't calibrate
      const Prediction pq = quantized.value().Predict(input.value(),
                                                      &quant_scratch);
      const Prediction pr = fp32.value().Predict(input.value(), &fp32_scratch);
      ++used;
      if (pq.label != pr.label) ++disagreements;
      for (int c = 0; c < servable.num_classes(); ++c) {
        const float d = std::fabs(quant_scratch.logits[static_cast<size_t>(c)] -
                                  fp32_scratch.logits[static_cast<size_t>(c)]);
        if (d > max_diff) max_diff = d;
      }
    }
    report.calibration_size = used;
    report.argmax_disagreements = disagreements;
    report.max_abs_logit_diff = max_diff;
    // An empty calibration slice can't certify the backend — treat it as a
    // failed guardrail rather than serving unvalidated quantized logits.
    const bool over_budget =
        used == 0 ||
        static_cast<double>(disagreements) / static_cast<double>(used) >
            options.max_argmax_disagreement;
    if (over_budget) {
      fell_back = true;
      servable.compiled_ =
          std::make_unique<CompiledModel>(std::move(fp32).value());
    } else {
      servable.backend_ = std::move(backend).value();
      servable.compiled_ =
          std::make_unique<CompiledModel>(std::move(quantized).value());
    }
  }

  if (fell_back) {
    report.active = "fp32";
    report.fell_back = true;
    metrics_->GetCounter(kBackendFallbackCounter).Increment();
    DEEPMAP_LOG(Warning) << "model '" << servable.name() << "': backend '"
                         << requested << "' failed the calibration guardrail ("
                         << report.argmax_disagreements << "/"
                         << report.calibration_size
                         << " argmax disagreements, max |logit diff| "
                         << report.max_abs_logit_diff
                         << "); serving fp32 instead";
  }
  servable.backend_report_ = report;
  metrics_->GetCounter(kBackendLoadsCounter).Increment();
  return Status::Ok();
}

Status ModelRegistry::Load(const std::string& name,
                           const graph::GraphDataset& reference,
                           const core::DeepMapConfig& config,
                           const std::string& params_path) {
  Options options;
  options.backend.clear();  // honor a persisted sidecar tag if present
  return Load(name, reference, config, params_path, options);
}

Status ModelRegistry::Load(const std::string& name,
                           const graph::GraphDataset& reference,
                           const core::DeepMapConfig& config,
                           const std::string& params_path,
                           const Options& options) {
  // Injected load failure: storage/permission flakiness before any state is
  // built, the path a rollout controller must handle by keeping the old
  // servable (Load never unregisters on failure).
  DEEPMAP_INJECT_FAULT("serve.registry.load");
  Options resolved = options;
  if (resolved.backend.empty()) {
    StatusOr<std::string> tag = ReadBackendTag(params_path);
    if (tag.ok()) {
      resolved.backend = tag.value();
    } else if (tag.status().code() != StatusCode::kNotFound) {
      return tag.status();  // corrupt tag: fail loudly, never misload
    } else {
      resolved.backend = "fp32";
    }
  }
  auto servable = std::make_shared<ServableModel>(name, reference, config);
  core::DeepMapModel model(servable->feature_dim(),
                           servable->sequence_length(),
                           servable->num_classes(), config);
  if (Status s = nn::LoadParameters(model.Params(), params_path); !s.ok()) {
    return s;
  }
  if (Status s = CompileInto(*servable, model, reference, resolved); !s.ok()) {
    return s;
  }
  if (options.persist_backend_tag) {
    if (Status s = WriteBackendTag(params_path, resolved.backend); !s.ok()) {
      return s;
    }
  }
  return Register(name, std::move(servable));
}

Status ModelRegistry::Adopt(const std::string& name,
                            const graph::GraphDataset& reference,
                            const core::DeepMapConfig& config,
                            core::DeepMapModel& trained) {
  return Adopt(name, reference, config, trained, Options());
}

Status ModelRegistry::Adopt(const std::string& name,
                            const graph::GraphDataset& reference,
                            const core::DeepMapConfig& config,
                            core::DeepMapModel& trained,
                            const Options& options) {
  auto servable = std::make_shared<ServableModel>(name, reference, config);
  if (Status s = CompileInto(*servable, trained, reference, options); !s.ok()) {
    return s;
  }
  return Register(name, std::move(servable));
}

Status ModelRegistry::Register(const std::string& name,
                               std::shared_ptr<ServableModel> servable) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = models_.emplace(name, std::move(servable));
  if (!inserted) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered");
  }
  return Status::Ok();
}

std::shared_ptr<ServableModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::Unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return Status::Ok();
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, servable] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

std::string ModelRegistry::BackendTagPath(const std::string& params_path) {
  return params_path + ".backend";
}

Status ModelRegistry::WriteBackendTag(const std::string& params_path,
                                      const std::string& backend) {
  if (!IsKnownBackend(backend)) {
    return Status::InvalidArgument("cannot persist unknown backend '" +
                                   backend + "'");
  }
  const std::string path = BackendTagPath(params_path);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write backend tag: " + path);
  out << backend << "\n";
  out.flush();
  if (!out) return Status::IoError("short write to backend tag: " + path);
  return Status::Ok();
}

StatusOr<std::string> ModelRegistry::ReadBackendTag(
    const std::string& params_path) {
  const std::string path = BackendTagPath(params_path);
  std::ifstream in(path);
  if (!in) return Status::NotFound("no backend tag at " + path);
  std::string tag;
  std::getline(in, tag);
  while (!tag.empty() && (tag.back() == '\r' || tag.back() == ' ' ||
                          tag.back() == '\t')) {
    tag.pop_back();
  }
  if (!IsKnownBackend(tag)) {
    return Status::InvalidArgument("backend tag at " + path +
                                   " names unknown backend '" + tag + "'");
  }
  return tag;
}

int64_t ModelRegistry::backend_loads() const {
  return metrics_->GetCounter(kBackendLoadsCounter).Value();
}

int64_t ModelRegistry::backend_fallbacks() const {
  return metrics_->GetCounter(kBackendFallbackCounter).Value();
}

}  // namespace deepmap::serve
