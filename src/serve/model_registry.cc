#include "serve/model_registry.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "nn/serialization.h"

namespace deepmap::serve {
namespace {

constexpr char kBackendLoadsCounter[] = "deepmap_serve_backend_loads_total";
constexpr char kBackendFallbackCounter[] =
    "deepmap_serve_backend_fallback_total";
constexpr char kReloadAttemptsCounter[] = "deepmap_serve_reload_attempts_total";
constexpr char kReloadSuccessCounter[] = "deepmap_serve_reload_success_total";
constexpr char kReloadRollbackCounter[] = "deepmap_serve_reload_rollback_total";
constexpr char kReloadBreakerOpenCounter[] =
    "deepmap_serve_reload_breaker_open_total";

bool IsKnownBackend(const std::string& name) {
  const std::vector<std::string> known = nn::InferenceBackendNames();
  return std::find(known.begin(), known.end(), name) != known.end();
}

}  // namespace

ServableModel::ServableModel(std::string name,
                             const graph::GraphDataset& reference,
                             const core::DeepMapConfig& config)
    : name_(std::move(name)),
      config_(config),
      num_classes_(reference.NumClasses()),
      preprocessor_(reference, config) {
  // Majority-class fallback: empirical class priors of the reference
  // dataset, argmax label (lowest id wins ties, matching nn::Predict).
  fallback_.source = PredictionSource::kFallback;
  fallback_.probabilities.assign(static_cast<size_t>(num_classes_), 0.0f);
  for (int label : reference.labels()) {
    fallback_.probabilities[static_cast<size_t>(label)] += 1.0f;
  }
  const float total = static_cast<float>(reference.size());
  for (float& p : fallback_.probabilities) p /= total;
  fallback_.label = static_cast<int>(
      std::max_element(fallback_.probabilities.begin(),
                       fallback_.probabilities.end()) -
      fallback_.probabilities.begin());
}

ServableHandle::ServableHandle(std::shared_ptr<ServableModel> initial)
    : servable_(std::move(initial)) {
  DEEPMAP_CHECK(servable_ != nullptr);
}

std::shared_ptr<ServableModel> ServableHandle::Get() const {
  std::lock_guard<std::mutex> lock(mu_);
  return servable_;
}

std::shared_ptr<ServableModel> ServableHandle::Swap(
    std::shared_ptr<ServableModel> next) {
  DEEPMAP_CHECK(next != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<ServableModel> old = std::move(servable_);
  servable_ = std::move(next);
  return old;
}

ModelRegistry::ModelRegistry(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = metrics;
  }
}

Status ModelRegistry::CompileInto(ServableModel& servable,
                                  core::DeepMapModel& model,
                                  const graph::GraphDataset& reference,
                                  const Options& options) {
  const std::string requested =
      options.backend.empty() ? "fp32" : options.backend;
  BackendReport report;
  report.requested = requested;
  report.active = requested;

  const core::DeepMapConfig& config = servable.config();
  auto compile = [&](const nn::InferenceBackend* be) {
    return CompiledModel::Compile(model, config, servable.feature_dim(),
                                  servable.sequence_length(),
                                  servable.num_classes(), be);
  };

  if (requested == "fp32") {
    StatusOr<CompiledModel> compiled = compile(nullptr);
    if (!compiled.ok()) return compiled.status();
    servable.compiled_ =
        std::make_unique<CompiledModel>(std::move(compiled).value());
    servable.backend_report_ = report;
    metrics_->GetCounter(kBackendLoadsCounter).Increment();
    return Status::Ok();
  }

  StatusOr<std::unique_ptr<nn::InferenceBackend>> backend =
      nn::MakeInferenceBackend(requested);
  if (!backend.ok()) return backend.status();
  StatusOr<CompiledModel> quantized = compile(backend.value().get());
  if (!quantized.ok()) return quantized.status();

  bool fell_back = false;
  if (options.calibration_graphs <= 0) {
    // Guardrail disabled: install the requested backend unchecked.
    servable.backend_ = std::move(backend).value();
    servable.compiled_ =
        std::make_unique<CompiledModel>(std::move(quantized).value());
  } else {
    // Calibration guardrail: compare against the exact fp32 compile on the
    // first reference graphs that preprocess cleanly.
    StatusOr<CompiledModel> fp32 = compile(nullptr);
    if (!fp32.ok()) return fp32.status();
    ForwardScratch quant_scratch, fp32_scratch;
    const std::vector<graph::Graph>& graphs = reference.graphs();
    const int want = std::min<int>(options.calibration_graphs,
                                   static_cast<int>(graphs.size()));
    int used = 0;
    int disagreements = 0;
    float max_diff = 0.0f;
    for (size_t i = 0; i < graphs.size() && used < want; ++i) {
      StatusOr<nn::Tensor> input = servable.preprocessor_.Preprocess(graphs[i]);
      if (!input.ok()) continue;  // oversized/empty graphs can't calibrate
      const Prediction pq = quantized.value().Predict(input.value(),
                                                      &quant_scratch);
      const Prediction pr = fp32.value().Predict(input.value(), &fp32_scratch);
      ++used;
      // Injected calibration divergence: models a quantization that corrupts
      // this graph's prediction, forcing an argmax disagreement so guardrail
      // trips (and reload shadow-validation failures built on them) are
      // deterministically testable.
      const bool diverged = DEEPMAP_FAILPOINT_TRIGGERED("serve.registry.calibrate");
      if (diverged || pq.label != pr.label) ++disagreements;
      for (int c = 0; c < servable.num_classes(); ++c) {
        const float d = std::fabs(quant_scratch.logits[static_cast<size_t>(c)] -
                                  fp32_scratch.logits[static_cast<size_t>(c)]);
        if (d > max_diff) max_diff = d;
      }
    }
    report.calibration_size = used;
    report.argmax_disagreements = disagreements;
    report.max_abs_logit_diff = max_diff;
    // An empty calibration slice can't certify the backend — treat it as a
    // failed guardrail rather than serving unvalidated quantized logits.
    const bool over_budget =
        used == 0 ||
        static_cast<double>(disagreements) / static_cast<double>(used) >
            options.max_argmax_disagreement;
    if (over_budget) {
      fell_back = true;
      servable.compiled_ =
          std::make_unique<CompiledModel>(std::move(fp32).value());
    } else {
      servable.backend_ = std::move(backend).value();
      servable.compiled_ =
          std::make_unique<CompiledModel>(std::move(quantized).value());
    }
  }

  if (fell_back) {
    report.active = "fp32";
    report.fell_back = true;
    metrics_->GetCounter(kBackendFallbackCounter).Increment();
    DEEPMAP_LOG(Warning) << "model '" << servable.name() << "': backend '"
                         << requested << "' failed the calibration guardrail ("
                         << report.argmax_disagreements << "/"
                         << report.calibration_size
                         << " argmax disagreements, max |logit diff| "
                         << report.max_abs_logit_diff
                         << "); serving fp32 instead";
  }
  servable.backend_report_ = report;
  metrics_->GetCounter(kBackendLoadsCounter).Increment();
  return Status::Ok();
}

Status ModelRegistry::Load(const std::string& name,
                           const graph::GraphDataset& reference,
                           const core::DeepMapConfig& config,
                           const std::string& params_path) {
  Options options;
  options.backend.clear();  // honor a persisted sidecar tag if present
  return Load(name, reference, config, params_path, options);
}

Status ModelRegistry::Load(const std::string& name,
                           const graph::GraphDataset& reference,
                           const core::DeepMapConfig& config,
                           const std::string& params_path,
                           const Options& options) {
  // Injected load failure: storage/permission flakiness before any state is
  // built, the path a rollout controller must handle by keeping the old
  // servable (Load never unregisters on failure).
  DEEPMAP_INJECT_FAULT("serve.registry.load");
  Options resolved = options;
  if (resolved.backend.empty()) {
    StatusOr<std::string> tag = ReadBackendTag(params_path);
    if (tag.ok()) {
      resolved.backend = tag.value();
    } else if (tag.status().code() != StatusCode::kNotFound) {
      return tag.status();  // corrupt tag: fail loudly, never misload
    } else {
      resolved.backend = "fp32";
    }
  }
  auto servable = std::make_shared<ServableModel>(name, reference, config);
  core::DeepMapModel model(servable->feature_dim(),
                           servable->sequence_length(),
                           servable->num_classes(), config);
  if (Status s = nn::LoadParameters(model.Params(), params_path); !s.ok()) {
    return s;
  }
  if (Status s = CompileInto(*servable, model, reference, resolved); !s.ok()) {
    return s;
  }
  if (options.persist_backend_tag) {
    if (Status s = WriteBackendTag(params_path, resolved.backend); !s.ok()) {
      return s;
    }
  }
  return Register(name, std::move(servable));
}

Status ModelRegistry::Adopt(const std::string& name,
                            const graph::GraphDataset& reference,
                            const core::DeepMapConfig& config,
                            core::DeepMapModel& trained) {
  return Adopt(name, reference, config, trained, Options());
}

Status ModelRegistry::Adopt(const std::string& name,
                            const graph::GraphDataset& reference,
                            const core::DeepMapConfig& config,
                            core::DeepMapModel& trained,
                            const Options& options) {
  auto servable = std::make_shared<ServableModel>(name, reference, config);
  if (Status s = CompileInto(*servable, trained, reference, options); !s.ok()) {
    return s;
  }
  return Register(name, std::move(servable));
}

Status ModelRegistry::Register(const std::string& name,
                               std::shared_ptr<ServableModel> servable) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = models_.emplace(name, std::move(servable));
  if (!inserted) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered");
  }
  return Status::Ok();
}

Status ModelRegistry::ReloadFailed(const std::string& name,
                                   int breaker_threshold, Status error) {
  bool opened = false;
  int failures = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    BreakerState& breaker = breakers_[name];
    failures = ++breaker.consecutive_failures;
    if (breaker_threshold > 0 && failures >= breaker_threshold &&
        !breaker.open) {
      breaker.open = true;
      opened = true;
    }
  }
  metrics_->GetCounter(kReloadRollbackCounter).Increment();
  DEEPMAP_LOG(Warning) << "model '" << name << "': reload rolled back ("
                       << error.message() << "); old version keeps serving"
                       << " [consecutive failures: " << failures << "]"
                       << (opened ? "; circuit breaker OPEN" : "");
  return error;
}

StatusOr<std::shared_ptr<ServableModel>> ModelRegistry::Reload(
    const std::string& name, const graph::GraphDataset& reference,
    const core::DeepMapConfig& config, const std::string& params_path,
    const ReloadOptions& options, ReloadReport* report) {
  metrics_->GetCounter(kReloadAttemptsCounter).Increment();
  std::shared_ptr<ServableModel> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto breaker = breakers_.find(name);
    if (breaker != breakers_.end() && breaker->second.open) {
      metrics_->GetCounter(kReloadBreakerOpenCounter).Increment();
      return StatusOr<std::shared_ptr<ServableModel>>(
          Status::FailedPrecondition(
              "reload circuit breaker is open for model '" + name +
              "' (" + std::to_string(breaker->second.consecutive_failures) +
              " consecutive failures); ResetBreaker to retry"));
    }
    auto it = models_.find(name);
    if (it == models_.end()) {
      // Caller error, not a broken artifact: does not advance the breaker.
      return StatusOr<std::shared_ptr<ServableModel>>(Status::NotFound(
          "cannot reload model '" + name + "': not registered"));
    }
    old = it->second;
  }
  if (report != nullptr) *report = ReloadReport{old->version(), 0, 0};

  auto fail = [&](Status s) {
    return StatusOr<std::shared_ptr<ServableModel>>(
        ReloadFailed(name, options.breaker_threshold, std::move(s)));
  };

  // Injected reload failure: storage/permission flakiness fetching the new
  // artifact, before any state is built.
  if (DEEPMAP_FAILPOINT_TRIGGERED("serve.registry.reload")) {
    return fail(FailPointError("serve.registry.reload"));
  }

  Options resolved = options.load;
  if (resolved.backend.empty()) {
    StatusOr<std::string> tag = ReadBackendTag(params_path);
    if (tag.ok()) {
      resolved.backend = tag.value();
    } else if (tag.status().code() != StatusCode::kNotFound) {
      return fail(tag.status());
    } else {
      resolved.backend = "fp32";
    }
  }

  auto servable = std::make_shared<ServableModel>(name, reference, config);
  core::DeepMapModel model(servable->feature_dim(),
                           servable->sequence_length(),
                           servable->num_classes(), config);
  if (Status s = nn::LoadParameters(model.Params(), params_path); !s.ok()) {
    return fail(std::move(s));
  }
  if (Status s = CompileInto(*servable, model, reference, resolved); !s.ok()) {
    return fail(std::move(s));
  }

  // Shadow validation: replay calibration graphs through the NEW servable,
  // reject non-finite logits (the injected-corruption signature) outright,
  // and budget argmax flips against the OLD servable — a reload that changes
  // most answers is more likely a bad artifact than a better model.
  int shadow_used = 0;
  int label_flips = 0;
  if (options.shadow_graphs > 0) {
    ForwardScratch new_scratch, old_scratch;
    const std::vector<graph::Graph>& graphs = reference.graphs();
    for (size_t i = 0;
         i < graphs.size() && shadow_used < options.shadow_graphs; ++i) {
      StatusOr<nn::Tensor> input = servable->preprocessor().Preprocess(graphs[i]);
      if (!input.ok()) continue;  // oversized/empty graphs can't validate
      const Prediction fresh =
          servable->compiled().Predict(input.value(), &new_scratch);
      bool corrupt = DEEPMAP_FAILPOINT_TRIGGERED("serve.reload.corrupt");
      for (int c = 0; c < servable->num_classes(); ++c) {
        if (!std::isfinite(new_scratch.logits[static_cast<size_t>(c)])) {
          corrupt = true;
        }
      }
      if (corrupt) {
        if (report != nullptr) {
          report->shadow_size = shadow_used;
          report->label_flips = label_flips;
        }
        return fail(Status::Internal(
            "reload shadow validation: corrupt (non-finite) logits on "
            "calibration graph " + std::to_string(i)));
      }
      const Prediction stale =
          old->compiled().Predict(input.value(), &old_scratch);
      ++shadow_used;
      if (fresh.label != stale.label) ++label_flips;
    }
    if (shadow_used == 0) {
      return fail(Status::FailedPrecondition(
          "reload shadow validation: no calibration graph preprocessed "
          "cleanly; cannot certify the new servable"));
    }
    if (options.max_label_flip_fraction < 1.0 &&
        static_cast<double>(label_flips) / static_cast<double>(shadow_used) >
            options.max_label_flip_fraction) {
      if (report != nullptr) {
        report->shadow_size = shadow_used;
        report->label_flips = label_flips;
      }
      return fail(Status::FailedPrecondition(
          "reload shadow validation: " + std::to_string(label_flips) + "/" +
          std::to_string(shadow_used) +
          " argmax flips vs the serving version exceed the budget"));
    }
  }

  servable->version_ = old->version() + 1;
  std::vector<ReloadSubscriber> subscribers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    models_[name] = servable;
    breakers_[name] = BreakerState{};  // success closes the breaker
    auto subs = subscribers_.find(name);
    if (subs != subscribers_.end()) subscribers = subs->second;
  }
  metrics_->GetCounter(kReloadSuccessCounter).Increment();
  if (report != nullptr) {
    *report = ReloadReport{servable->version(), shadow_used, label_flips};
  }
  DEEPMAP_LOG(Info) << "model '" << name << "': hot-reloaded v"
                    << old->version() << " -> v" << servable->version()
                    << " (backend '" << servable->backend_name()
                    << "', shadow " << label_flips << "/" << shadow_used
                    << " flips)";
  for (const ReloadSubscriber& fn : subscribers) fn(servable);
  return StatusOr<std::shared_ptr<ServableModel>>(std::move(servable));
}

void ModelRegistry::Subscribe(const std::string& name, ReloadSubscriber fn) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_[name].push_back(std::move(fn));
}

bool ModelRegistry::breaker_open(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(name);
  return it != breakers_.end() && it->second.open;
}

void ModelRegistry::ResetBreaker(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  breakers_[name] = BreakerState{};
}

std::shared_ptr<ServableModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::Unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return Status::Ok();
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, servable] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

std::string ModelRegistry::BackendTagPath(const std::string& params_path) {
  return params_path + ".backend";
}

Status ModelRegistry::WriteBackendTag(const std::string& params_path,
                                      const std::string& backend) {
  if (!IsKnownBackend(backend)) {
    return Status::InvalidArgument("cannot persist unknown backend '" +
                                   backend + "'");
  }
  const std::string path = BackendTagPath(params_path);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write backend tag: " + path);
  out << backend << "\n";
  out.flush();
  if (!out) return Status::IoError("short write to backend tag: " + path);
  return Status::Ok();
}

StatusOr<std::string> ModelRegistry::ReadBackendTag(
    const std::string& params_path) {
  const std::string path = BackendTagPath(params_path);
  std::ifstream in(path);
  if (!in) return Status::NotFound("no backend tag at " + path);
  std::string tag;
  std::getline(in, tag);
  while (!tag.empty() && (tag.back() == '\r' || tag.back() == ' ' ||
                          tag.back() == '\t')) {
    tag.pop_back();
  }
  if (!IsKnownBackend(tag)) {
    return Status::InvalidArgument("backend tag at " + path +
                                   " names unknown backend '" + tag + "'");
  }
  return tag;
}

int64_t ModelRegistry::backend_loads() const {
  return metrics_->GetCounter(kBackendLoadsCounter).Value();
}

int64_t ModelRegistry::backend_fallbacks() const {
  return metrics_->GetCounter(kBackendFallbackCounter).Value();
}

int64_t ModelRegistry::reload_attempts() const {
  return metrics_->GetCounter(kReloadAttemptsCounter).Value();
}

int64_t ModelRegistry::reload_successes() const {
  return metrics_->GetCounter(kReloadSuccessCounter).Value();
}

int64_t ModelRegistry::reload_rollbacks() const {
  return metrics_->GetCounter(kReloadRollbackCounter).Value();
}

int64_t ModelRegistry::reload_breaker_rejections() const {
  return metrics_->GetCounter(kReloadBreakerOpenCounter).Value();
}

}  // namespace deepmap::serve
