#include "serve/model_registry.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "nn/serialization.h"

namespace deepmap::serve {

ServableModel::ServableModel(std::string name,
                             const graph::GraphDataset& reference,
                             const core::DeepMapConfig& config)
    : name_(std::move(name)),
      config_(config),
      num_classes_(reference.NumClasses()),
      preprocessor_(reference, config) {
  // Majority-class fallback: empirical class priors of the reference
  // dataset, argmax label (lowest id wins ties, matching nn::Predict).
  fallback_.source = PredictionSource::kFallback;
  fallback_.probabilities.assign(static_cast<size_t>(num_classes_), 0.0f);
  for (int label : reference.labels()) {
    fallback_.probabilities[static_cast<size_t>(label)] += 1.0f;
  }
  const float total = static_cast<float>(reference.size());
  for (float& p : fallback_.probabilities) p /= total;
  fallback_.label = static_cast<int>(
      std::max_element(fallback_.probabilities.begin(),
                       fallback_.probabilities.end()) -
      fallback_.probabilities.begin());
}

Status ModelRegistry::Load(const std::string& name,
                           const graph::GraphDataset& reference,
                           const core::DeepMapConfig& config,
                           const std::string& params_path) {
  // Injected load failure: storage/permission flakiness before any state is
  // built, the path a rollout controller must handle by keeping the old
  // servable (Load never unregisters on failure).
  DEEPMAP_INJECT_FAULT("serve.registry.load");
  auto servable = std::make_shared<ServableModel>(name, reference, config);
  core::DeepMapModel model(servable->feature_dim(),
                           servable->sequence_length(),
                           servable->num_classes(), config);
  if (Status s = nn::LoadParameters(model.Params(), params_path); !s.ok()) {
    return s;
  }
  StatusOr<CompiledModel> compiled = CompiledModel::Compile(
      model, config, servable->feature_dim(), servable->sequence_length(),
      servable->num_classes());
  if (!compiled.ok()) return compiled.status();
  servable->compiled_ =
      std::make_unique<CompiledModel>(std::move(compiled).value());
  return Register(name, std::move(servable));
}

Status ModelRegistry::Adopt(const std::string& name,
                            const graph::GraphDataset& reference,
                            const core::DeepMapConfig& config,
                            core::DeepMapModel& trained) {
  auto servable = std::make_shared<ServableModel>(name, reference, config);
  StatusOr<CompiledModel> compiled = CompiledModel::Compile(
      trained, config, servable->feature_dim(), servable->sequence_length(),
      servable->num_classes());
  if (!compiled.ok()) return compiled.status();
  servable->compiled_ =
      std::make_unique<CompiledModel>(std::move(compiled).value());
  return Register(name, std::move(servable));
}

Status ModelRegistry::Register(const std::string& name,
                               std::shared_ptr<ServableModel> servable) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = models_.emplace(name, std::move(servable));
  if (!inserted) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered");
  }
  return Status::Ok();
}

std::shared_ptr<ServableModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::Unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return Status::Ok();
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, servable] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace deepmap::serve
