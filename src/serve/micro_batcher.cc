#include "serve/micro_batcher.h"

#include <algorithm>

#include "common/check.h"
#include "common/failpoint.h"

namespace deepmap::serve {

MicroBatcher::MicroBatcher(const Options& options, BatchHandler handler)
    : options_(options), handler_(std::move(handler)) {
  DEEPMAP_CHECK_GT(options_.max_batch, 0);
  DEEPMAP_CHECK_GE(options_.max_wait_us, 0);
  DEEPMAP_CHECK_GT(options_.queue_capacity, size_t{0});
  DEEPMAP_CHECK(handler_ != nullptr);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

MicroBatcher::~MicroBatcher() { Stop(); }

Status MicroBatcher::Submit(ServeRequest&& request) {
  // Simulated enqueue failure (e.g. a flaky transport in front of the
  // queue); retryable, and the promise stays with the caller.
  DEEPMAP_INJECT_FAULT("serve.batcher.submit");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("batcher is shutting down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      return Status::ResourceExhausted(
          "request queue full (" + std::to_string(options_.queue_capacity) +
          " pending)");
    }
    queue_.push_back(std::move(request));
  }
  work_available_.notify_one();
  return Status::Ok();
}

void MicroBatcher::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && !dispatching_; });
}

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped (destructor after explicit Stop).
      if (!dispatcher_.joinable()) return;
    }
    stopping_ = true;
  }
  work_available_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

size_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void MicroBatcher::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return !queue_.empty() || stopping_; });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Coalesce: flush on max_batch or max_wait_us after the oldest request,
    // whichever first. Stop also flushes immediately (drain semantics).
    const auto deadline =
        queue_.front().enqueue_time +
        std::chrono::microseconds(options_.max_wait_us);
    work_available_.wait_until(lock, deadline, [this] {
      return queue_.size() >= static_cast<size_t>(options_.max_batch) ||
             stopping_;
    });

    const size_t take = std::min(queue_.size(),
                                 static_cast<size_t>(options_.max_batch));
    std::vector<ServeRequest> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    const size_t depth_after = queue_.size();
    dispatching_ = true;
    lock.unlock();
    // Sync point, not a failure: a test hook here can park the dispatcher
    // (queue keeps filling behind it) to reproduce overload and shutdown
    // races deterministically, without sleeps. The batch is always handed
    // to the handler afterwards.
    (void)DEEPMAP_FAILPOINT_TRIGGERED("serve.batcher.dispatch");
    handler_(std::move(batch), depth_after);
    lock.lock();
    dispatching_ = false;
    if (queue_.empty()) idle_.notify_all();
  }
}

}  // namespace deepmap::serve
