// ModelRegistry: named, validated, ready-to-serve DEEPMAP models.
//
// A servable bundle is more than the weight file nn::SaveParameters writes:
// reproducing a prediction requires the preprocessing state (feature
// vocabulary / column scales / WL dictionary, sequence length) that existed
// at training time. The registry rebuilds that state deterministically from
// the reference dataset + config, instantiates the architecture, loads and
// validates the persisted parameters against it (count/shape mismatches are
// Status errors, never silent misloads), and compiles the weights into the
// immutable inference form.
//
// Backend selection lives here too: Options::backend picks the
// nn::InferenceBackend the model compiles against ("fp32" exact reference,
// "int8" quantized AVX2). Non-fp32 backends pass through an accuracy
// guardrail at load time — quantized and fp32 predictions are compared on a
// calibration slice of the reference dataset, and when argmax disagreement
// exceeds Options::max_argmax_disagreement the registry installs the fp32
// compile instead, increments deepmap_serve_backend_fallback_total, and logs
// a warning. The chosen backend can be persisted alongside the weight file
// as a one-line sidecar tag (`<params_path>.backend`) that a plain Load
// picks up automatically.
//
// Registered models are shared_ptr-held, so a model stays valid for
// in-flight requests even if it is unloaded concurrently.
#ifndef DEEPMAP_SERVE_MODEL_REGISTRY_H_
#define DEEPMAP_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/deepmap.h"
#include "graph/dataset.h"
#include "nn/inference_backend.h"
#include "obs/metrics.h"
#include "serve/compiled_model.h"
#include "serve/preprocessor.h"

namespace deepmap::serve {

/// Outcome of backend selection + the calibration guardrail for one load.
struct BackendReport {
  std::string requested = "fp32";  // what the caller asked for
  std::string active = "fp32";     // what actually serves (post-guardrail)
  int calibration_size = 0;        // graphs the guardrail compared on
  int argmax_disagreements = 0;    // labels that differed vs fp32
  float max_abs_logit_diff = 0.0f; // worst logit deviation observed
  bool fell_back = false;          // guardrail rejected the backend
};

/// A loaded model plus everything needed to serve it.
class ServableModel {
 public:
  ServableModel(std::string name, const graph::GraphDataset& reference,
                const core::DeepMapConfig& config);

  const std::string& name() const { return name_; }
  const core::DeepMapConfig& config() const { return config_; }
  int feature_dim() const { return preprocessor_.feature_dim(); }
  int sequence_length() const { return preprocessor_.sequence_length(); }
  int num_classes() const { return num_classes_; }

  /// Backend actually serving this model ("fp32" after a guardrail
  /// fallback, regardless of what was requested).
  const char* backend_name() const { return compiled_->backend_name(); }
  /// Selection + guardrail details from load time.
  const BackendReport& backend_report() const { return backend_report_; }

  /// Thread-safe request preprocessing (see Preprocessor).
  Preprocessor& preprocessor() { return preprocessor_; }
  /// Immutable compiled weights; valid only after a successful Load/Adopt.
  const CompiledModel& compiled() const { return *compiled_; }

  /// Degraded-mode answer of last resort: the reference dataset's majority
  /// class with the empirical class priors as probabilities. Costs nothing
  /// to serve and beats an error for screening-style workloads.
  const Prediction& fallback_prediction() const { return fallback_; }

 private:
  friend class ModelRegistry;

  std::string name_;
  core::DeepMapConfig config_;
  int num_classes_;
  Preprocessor preprocessor_;
  Prediction fallback_;
  // Owns non-fp32 backends; null when serving through nn::Fp32Backend().
  // Declared before compiled_ so the backend outlives the packed weights.
  std::unique_ptr<nn::InferenceBackend> backend_;
  std::unique_ptr<CompiledModel> compiled_;
  BackendReport backend_report_;
};

/// Thread-safe name -> ServableModel map.
class ModelRegistry {
 public:
  /// Per-load backend selection and guardrail budget.
  struct Options {
    /// InferenceBackend name ("fp32", "int8"). Empty means: read the
    /// persisted sidecar tag next to the params file (Load only), defaulting
    /// to "fp32" when no tag exists. Unknown names are InvalidArgument.
    std::string backend = "fp32";
    /// Calibration-slice size for the guardrail (first N reference graphs
    /// that preprocess cleanly). <= 0 disables the guardrail entirely (the
    /// requested backend is installed unchecked).
    int calibration_graphs = 32;
    /// Maximum tolerated fraction of calibration graphs whose argmax label
    /// differs from fp32. Exceeding it falls back to fp32. Negative forces
    /// fallback for any non-fp32 backend (used to test the fallback path).
    double max_argmax_disagreement = 0.05;
    /// When true, Load/Adopt persist the *requested* backend name to the
    /// sidecar tag (Load only; requires a params path).
    bool persist_backend_tag = false;
  };

  /// Counters land in `metrics` (deepmap_serve_backend_*); pass nullptr for
  /// a private registry, inspectable via metrics().
  explicit ModelRegistry(obs::MetricsRegistry* metrics = nullptr);

  /// Builds preprocessing state from `reference` + `config`, loads the
  /// persisted parameters at `params_path` into a fresh architecture
  /// (rejecting count/shape mismatches and corrupt files), and registers the
  /// compiled result under `name`. Fails if `name` is already registered.
  /// This overload honors a persisted backend sidecar tag if one exists.
  Status Load(const std::string& name, const graph::GraphDataset& reference,
              const core::DeepMapConfig& config,
              const std::string& params_path);
  Status Load(const std::string& name, const graph::GraphDataset& reference,
              const core::DeepMapConfig& config, const std::string& params_path,
              const Options& options);

  /// Same, but adopts the parameters of an already-trained in-memory model
  /// (no file round-trip). `trained` must match the architecture implied by
  /// (reference, config).
  Status Adopt(const std::string& name, const graph::GraphDataset& reference,
               const core::DeepMapConfig& config,
               core::DeepMapModel& trained);
  Status Adopt(const std::string& name, const graph::GraphDataset& reference,
               const core::DeepMapConfig& config, core::DeepMapModel& trained,
               const Options& options);

  /// The servable registered under `name`, or nullptr.
  std::shared_ptr<ServableModel> Get(const std::string& name) const;

  Status Unload(const std::string& name);

  std::vector<std::string> Names() const;
  size_t size() const;

  /// Sidecar path the backend tag persists to: `<params_path>.backend`.
  static std::string BackendTagPath(const std::string& params_path);
  /// Persists `backend` (validated against the known backend names) as the
  /// sidecar tag for `params_path`.
  static Status WriteBackendTag(const std::string& params_path,
                                const std::string& backend);
  /// Reads the sidecar tag. NotFound when no tag exists; InvalidArgument
  /// when the tag names an unknown backend.
  static StatusOr<std::string> ReadBackendTag(const std::string& params_path);

  /// Registry this instance reports deepmap_serve_backend_* counters into.
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  /// Total successful backend installs (any backend).
  int64_t backend_loads() const;
  /// Guardrail-triggered fallbacks to fp32.
  int64_t backend_fallbacks() const;

 private:
  Status Register(const std::string& name,
                  std::shared_ptr<ServableModel> servable);

  /// Resolves options.backend, compiles `model` for it, runs the calibration
  /// guardrail, and installs the winning compile (+ report) into `servable`.
  Status CompileInto(ServableModel& servable, core::DeepMapModel& model,
                     const graph::GraphDataset& reference,
                     const Options& options);

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ServableModel>> models_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_MODEL_REGISTRY_H_
