// ModelRegistry: named, validated, ready-to-serve DEEPMAP models.
//
// A servable bundle is more than the weight file nn::SaveParameters writes:
// reproducing a prediction requires the preprocessing state (feature
// vocabulary / column scales / WL dictionary, sequence length) that existed
// at training time. The registry rebuilds that state deterministically from
// the reference dataset + config, instantiates the architecture, loads and
// validates the persisted parameters against it (count/shape mismatches are
// Status errors, never silent misloads), and compiles the weights into the
// immutable inference form.
//
// Backend selection lives here too: Options::backend picks the
// nn::InferenceBackend the model compiles against ("fp32" exact reference,
// "int8" quantized AVX2). Non-fp32 backends pass through an accuracy
// guardrail at load time — quantized and fp32 predictions are compared on a
// calibration slice of the reference dataset, and when argmax disagreement
// exceeds Options::max_argmax_disagreement the registry installs the fp32
// compile instead, increments deepmap_serve_backend_fallback_total, and logs
// a warning. The chosen backend can be persisted alongside the weight file
// as a one-line sidecar tag (`<params_path>.backend`) that a plain Load
// picks up automatically.
//
// Registered models are shared_ptr-held, so a model stays valid for
// in-flight requests even if it is unloaded concurrently.
//
// Hot reload (Reload) replaces a registered model under live traffic:
// a fresh servable is built from the new weight file, shadow-validated
// against the *currently serving* version on a slice of calibration graphs
// (predictions must be finite; argmax flips vs the old model are budgeted),
// and only then swapped into the registry with a bumped version number.
// Any failure — load error, compile error, injected corruption, guardrail
// violation — rolls back: the old servable keeps serving untouched. A
// per-model circuit breaker counts consecutive reload failures and, once
// open, fails further reloads fast (FailedPrecondition) until
// ResetBreaker(), so a broken rollout pipeline cannot burn cycles
// revalidating the same corrupt artifact. Subscribers (e.g. a ServeCluster
// via ServableHandle) are notified after each successful swap.
#ifndef DEEPMAP_SERVE_MODEL_REGISTRY_H_
#define DEEPMAP_SERVE_MODEL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/deepmap.h"
#include "graph/dataset.h"
#include "nn/inference_backend.h"
#include "obs/metrics.h"
#include "serve/compiled_model.h"
#include "serve/preprocessor.h"

namespace deepmap::serve {

/// Outcome of backend selection + the calibration guardrail for one load.
struct BackendReport {
  std::string requested = "fp32";  // what the caller asked for
  std::string active = "fp32";     // what actually serves (post-guardrail)
  int calibration_size = 0;        // graphs the guardrail compared on
  int argmax_disagreements = 0;    // labels that differed vs fp32
  float max_abs_logit_diff = 0.0f; // worst logit deviation observed
  bool fell_back = false;          // guardrail rejected the backend
};

/// A loaded model plus everything needed to serve it.
class ServableModel {
 public:
  ServableModel(std::string name, const graph::GraphDataset& reference,
                const core::DeepMapConfig& config);

  const std::string& name() const { return name_; }
  const core::DeepMapConfig& config() const { return config_; }
  /// Monotone per-name version: 1 for the initial Load/Adopt, bumped by
  /// every successful Reload.
  int version() const { return version_; }
  int feature_dim() const { return preprocessor_.feature_dim(); }
  int sequence_length() const { return preprocessor_.sequence_length(); }
  int num_classes() const { return num_classes_; }

  /// Backend actually serving this model ("fp32" after a guardrail
  /// fallback, regardless of what was requested).
  const char* backend_name() const { return compiled_->backend_name(); }
  /// Selection + guardrail details from load time.
  const BackendReport& backend_report() const { return backend_report_; }

  /// Thread-safe request preprocessing (see Preprocessor).
  Preprocessor& preprocessor() { return preprocessor_; }
  /// Immutable compiled weights; valid only after a successful Load/Adopt.
  const CompiledModel& compiled() const { return *compiled_; }

  /// Degraded-mode answer of last resort: the reference dataset's majority
  /// class with the empirical class priors as probabilities. Costs nothing
  /// to serve and beats an error for screening-style workloads.
  const Prediction& fallback_prediction() const { return fallback_; }

 private:
  friend class ModelRegistry;

  std::string name_;
  core::DeepMapConfig config_;
  int version_ = 1;
  int num_classes_;
  Preprocessor preprocessor_;
  Prediction fallback_;
  // Owns non-fp32 backends; null when serving through nn::Fp32Backend().
  // Declared before compiled_ so the backend outlives the packed weights.
  std::unique_ptr<nn::InferenceBackend> backend_;
  std::unique_ptr<CompiledModel> compiled_;
  BackendReport backend_report_;
};

/// Thread-safe holder of the servable currently serving one traffic
/// surface. Consumers (BatchPipeline) pin the current servable once per
/// batch via Get(); a hot reload Swap()s in the replacement atomically, so
/// in-flight batches finish on the version they pinned while subsequent
/// batches pick up the new one — no pause, no dropped requests.
class ServableHandle {
 public:
  explicit ServableHandle(std::shared_ptr<ServableModel> initial);

  /// The current servable (never null).
  std::shared_ptr<ServableModel> Get() const;

  /// Installs `next` and returns the servable it replaced.
  std::shared_ptr<ServableModel> Swap(std::shared_ptr<ServableModel> next);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<ServableModel> servable_;
};

/// Thread-safe name -> ServableModel map.
class ModelRegistry {
 public:
  /// Per-load backend selection and guardrail budget.
  struct Options {
    /// InferenceBackend name ("fp32", "int8"). Empty means: read the
    /// persisted sidecar tag next to the params file (Load only), defaulting
    /// to "fp32" when no tag exists. Unknown names are InvalidArgument.
    std::string backend = "fp32";
    /// Calibration-slice size for the guardrail (first N reference graphs
    /// that preprocess cleanly). <= 0 disables the guardrail entirely (the
    /// requested backend is installed unchecked).
    int calibration_graphs = 32;
    /// Maximum tolerated fraction of calibration graphs whose argmax label
    /// differs from fp32. Exceeding it falls back to fp32. Negative forces
    /// fallback for any non-fp32 backend (used to test the fallback path).
    double max_argmax_disagreement = 0.05;
    /// When true, Load/Adopt persist the *requested* backend name to the
    /// sidecar tag (Load only; requires a params path).
    bool persist_backend_tag = false;
  };

  /// Counters land in `metrics` (deepmap_serve_backend_*); pass nullptr for
  /// a private registry, inspectable via metrics().
  explicit ModelRegistry(obs::MetricsRegistry* metrics = nullptr);

  /// Builds preprocessing state from `reference` + `config`, loads the
  /// persisted parameters at `params_path` into a fresh architecture
  /// (rejecting count/shape mismatches and corrupt files), and registers the
  /// compiled result under `name`. Fails if `name` is already registered.
  /// This overload honors a persisted backend sidecar tag if one exists.
  Status Load(const std::string& name, const graph::GraphDataset& reference,
              const core::DeepMapConfig& config,
              const std::string& params_path);
  Status Load(const std::string& name, const graph::GraphDataset& reference,
              const core::DeepMapConfig& config, const std::string& params_path,
              const Options& options);

  /// Same, but adopts the parameters of an already-trained in-memory model
  /// (no file round-trip). `trained` must match the architecture implied by
  /// (reference, config).
  Status Adopt(const std::string& name, const graph::GraphDataset& reference,
               const core::DeepMapConfig& config,
               core::DeepMapModel& trained);
  Status Adopt(const std::string& name, const graph::GraphDataset& reference,
               const core::DeepMapConfig& config, core::DeepMapModel& trained,
               const Options& options);

  /// Knobs of one hot reload (Reload).
  struct ReloadOptions {
    /// Backend selection + calibration guardrail for the replacement
    /// compile, exactly as in Load. An empty backend honors the sidecar tag.
    Options load;
    /// Shadow-validation slice: the first N reference graphs that
    /// preprocess cleanly are replayed through the new AND old servables.
    /// <= 0 skips shadow validation (the swap is still atomic).
    int shadow_graphs = 16;
    /// Maximum tolerated fraction of shadow graphs whose argmax label
    /// differs between the new and old servables. Exceeding it rolls back.
    /// >= 1 disables the flip budget (non-finite logits still roll back).
    double max_label_flip_fraction = 1.0;
    /// Consecutive reload failures that open the per-model circuit breaker.
    int breaker_threshold = 3;
  };

  /// Everything a rollout controller wants to log about one reload.
  struct ReloadReport {
    int version = 0;      // version now serving (old on rollback)
    int shadow_size = 0;  // graphs the shadow validation compared on
    int label_flips = 0;  // argmax changes vs the old servable
  };

  /// Hot-reloads `name`: builds a fresh servable from `params_path`
  /// (rejecting load/compile errors exactly as Load does), shadow-validates
  /// it against the currently registered version, atomically swaps the
  /// registry entry, bumps the version, and notifies subscribers. On ANY
  /// failure the old servable keeps serving (rollback; counted by
  /// deepmap_serve_reload_rollback_total) and the per-model circuit breaker
  /// advances; once open, further reloads fail fast with FailedPrecondition
  /// until ResetBreaker. Returns the new servable on success.
  StatusOr<std::shared_ptr<ServableModel>> Reload(
      const std::string& name, const graph::GraphDataset& reference,
      const core::DeepMapConfig& config, const std::string& params_path,
      const ReloadOptions& options, ReloadReport* report = nullptr);
  StatusOr<std::shared_ptr<ServableModel>> Reload(
      const std::string& name, const graph::GraphDataset& reference,
      const core::DeepMapConfig& config, const std::string& params_path) {
    return Reload(name, reference, config, params_path, ReloadOptions());
  }

  /// Registers `fn` to run (outside the registry lock) with the new
  /// servable after every successful Reload of `name`. Typical use: feed a
  /// ServeCluster::UpdateModel so replicas pick up the swap.
  using ReloadSubscriber = std::function<void(std::shared_ptr<ServableModel>)>;
  void Subscribe(const std::string& name, ReloadSubscriber fn);

  /// Circuit-breaker state for `name` (open = reloads fail fast).
  bool breaker_open(const std::string& name) const;
  /// Closes the breaker and zeroes the consecutive-failure count.
  void ResetBreaker(const std::string& name);

  /// The servable registered under `name`, or nullptr.
  std::shared_ptr<ServableModel> Get(const std::string& name) const;

  Status Unload(const std::string& name);

  std::vector<std::string> Names() const;
  size_t size() const;

  /// Sidecar path the backend tag persists to: `<params_path>.backend`.
  static std::string BackendTagPath(const std::string& params_path);
  /// Persists `backend` (validated against the known backend names) as the
  /// sidecar tag for `params_path`.
  static Status WriteBackendTag(const std::string& params_path,
                                const std::string& backend);
  /// Reads the sidecar tag. NotFound when no tag exists; InvalidArgument
  /// when the tag names an unknown backend.
  static StatusOr<std::string> ReadBackendTag(const std::string& params_path);

  /// Registry this instance reports deepmap_serve_backend_* counters into.
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  /// Total successful backend installs (any backend).
  int64_t backend_loads() const;
  /// Guardrail-triggered fallbacks to fp32.
  int64_t backend_fallbacks() const;
  /// Reload lifecycle counters (deepmap_serve_reload_*).
  int64_t reload_attempts() const;
  int64_t reload_successes() const;
  int64_t reload_rollbacks() const;
  /// Reloads rejected by an open circuit breaker.
  int64_t reload_breaker_rejections() const;

 private:
  /// Per-model reload circuit breaker. Guarded by mu_.
  struct BreakerState {
    int consecutive_failures = 0;
    bool open = false;
  };

  Status Register(const std::string& name,
                  std::shared_ptr<ServableModel> servable);

  /// Rollback bookkeeping shared by every Reload failure path: advances the
  /// breaker, counts the rollback, logs, and passes `error` through.
  Status ReloadFailed(const std::string& name, int breaker_threshold,
                      Status error);

  /// Resolves options.backend, compiles `model` for it, runs the calibration
  /// guardrail, and installs the winning compile (+ report) into `servable`.
  Status CompileInto(ServableModel& servable, core::DeepMapModel& model,
                     const graph::GraphDataset& reference,
                     const Options& options);

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ServableModel>> models_;
  std::map<std::string, BreakerState> breakers_;
  std::map<std::string, std::vector<ReloadSubscriber>> subscribers_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_MODEL_REGISTRY_H_
