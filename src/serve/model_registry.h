// ModelRegistry: named, validated, ready-to-serve DEEPMAP models.
//
// A servable bundle is more than the weight file nn::SaveParameters writes:
// reproducing a prediction requires the preprocessing state (feature
// vocabulary / column scales / WL dictionary, sequence length) that existed
// at training time. The registry rebuilds that state deterministically from
// the reference dataset + config, instantiates the architecture, loads and
// validates the persisted parameters against it (count/shape mismatches are
// Status errors, never silent misloads), and compiles the weights into the
// immutable inference form.
//
// Registered models are shared_ptr-held, so a model stays valid for
// in-flight requests even if it is unloaded concurrently.
#ifndef DEEPMAP_SERVE_MODEL_REGISTRY_H_
#define DEEPMAP_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/deepmap.h"
#include "graph/dataset.h"
#include "serve/compiled_model.h"
#include "serve/preprocessor.h"

namespace deepmap::serve {

/// A loaded model plus everything needed to serve it.
class ServableModel {
 public:
  ServableModel(std::string name, const graph::GraphDataset& reference,
                const core::DeepMapConfig& config);

  const std::string& name() const { return name_; }
  const core::DeepMapConfig& config() const { return config_; }
  int feature_dim() const { return preprocessor_.feature_dim(); }
  int sequence_length() const { return preprocessor_.sequence_length(); }
  int num_classes() const { return num_classes_; }

  /// Thread-safe request preprocessing (see Preprocessor).
  Preprocessor& preprocessor() { return preprocessor_; }
  /// Immutable compiled weights; valid only after a successful Load/Adopt.
  const CompiledModel& compiled() const { return *compiled_; }

  /// Degraded-mode answer of last resort: the reference dataset's majority
  /// class with the empirical class priors as probabilities. Costs nothing
  /// to serve and beats an error for screening-style workloads.
  const Prediction& fallback_prediction() const { return fallback_; }

 private:
  friend class ModelRegistry;

  std::string name_;
  core::DeepMapConfig config_;
  int num_classes_;
  Preprocessor preprocessor_;
  Prediction fallback_;
  std::unique_ptr<CompiledModel> compiled_;
};

/// Thread-safe name -> ServableModel map.
class ModelRegistry {
 public:
  /// Builds preprocessing state from `reference` + `config`, loads the
  /// persisted parameters at `params_path` into a fresh architecture
  /// (rejecting count/shape mismatches and corrupt files), and registers the
  /// compiled result under `name`. Fails if `name` is already registered.
  Status Load(const std::string& name, const graph::GraphDataset& reference,
              const core::DeepMapConfig& config,
              const std::string& params_path);

  /// Same, but adopts the parameters of an already-trained in-memory model
  /// (no file round-trip). `trained` must match the architecture implied by
  /// (reference, config).
  Status Adopt(const std::string& name, const graph::GraphDataset& reference,
               const core::DeepMapConfig& config,
               core::DeepMapModel& trained);

  /// The servable registered under `name`, or nullptr.
  std::shared_ptr<ServableModel> Get(const std::string& name) const;

  Status Unload(const std::string& name);

  std::vector<std::string> Names() const;
  size_t size() const;

 private:
  Status Register(const std::string& name,
                  std::shared_ptr<ServableModel> servable);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ServableModel>> models_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_MODEL_REGISTRY_H_
