// InferenceEngine: the serving front end.
//
//   Submit(graph)
//     -> PredictionCache lookup (WL graph hash; hit resolves immediately,
//        skipping preprocessing and the forward pass)
//     -> MicroBatcher (bounded MPSC queue, coalesces max_batch / max_wait_us)
//     -> batch dispatch on the dispatcher thread:
//          preprocess each graph on the ThreadPool (feature map ->
//          alignment -> tensor), then the batched compiled forward pass,
//          sharded across the pool
//     -> promises fulfilled, cache warmed, ServeMetrics updated.
//
// Submit is safe from any number of producer threads. Results are
// std::future<StatusOr<Prediction>>: queue overflow, preprocessing failures
// (empty / oversized graphs), and shutdown all surface as Status errors on
// the future, never as exceptions.
#ifndef DEEPMAP_SERVE_ENGINE_H_
#define DEEPMAP_SERVE_ENGINE_H_

#include <future>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "serve/metrics.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"

namespace deepmap::serve {

/// Batched, cached classification service over one ServableModel.
class InferenceEngine {
 public:
  struct Options {
    MicroBatcher::Options batcher;
    /// Prediction-cache entries; 0 disables caching (and skips hash
    /// computation on the submit path entirely).
    size_t cache_capacity = 4096;
    /// WL refinement rounds for the cache key.
    int cache_wl_iterations = 2;
    /// Worker threads for preprocessing / forward sharding; 0 = hardware
    /// concurrency.
    size_t num_threads = 0;
  };

  InferenceEngine(std::shared_ptr<ServableModel> model,
                  const Options& options);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one graph for classification.
  std::future<StatusOr<Prediction>> Submit(const graph::Graph& g);

  /// Synchronous convenience wrapper: Submit + wait.
  StatusOr<Prediction> Classify(const graph::Graph& g);

  /// Blocks until every previously submitted request has been answered.
  void Drain();

  const ServeMetrics& metrics() const { return metrics_; }
  const PredictionCache& cache() const { return cache_; }
  const ServableModel& model() const { return *model_; }

 private:
  void HandleBatch(std::vector<ServeRequest>&& batch,
                   size_t queue_depth_after);

  std::shared_ptr<ServableModel> model_;
  Options options_;
  ServeMetrics metrics_;
  PredictionCache cache_;
  ThreadPool pool_;
  std::unique_ptr<MicroBatcher> batcher_;  // last member: stops first
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_ENGINE_H_
