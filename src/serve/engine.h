// InferenceEngine: the serving front end.
//
//   Submit(graph, options)
//     -> deadline check (expired requests rejected at admission)
//     -> PredictionCache lookup (WL graph hash; hit resolves immediately,
//        skipping preprocessing and the forward pass)
//     -> admission controller (queue depth + observed p95 latency drive a
//        probabilistic load-shed with ResourceExhausted)
//     -> MicroBatcher (bounded MPSC queue, coalesces max_batch / max_wait_us)
//     -> batch dispatch on the dispatcher thread:
//          deadline re-check, preprocess each graph on the ThreadPool
//          (feature map -> alignment -> tensor), deadline re-check, then the
//          batched compiled forward pass, sharded across the pool
//     -> promises fulfilled, cache warmed, ServeMetrics updated.
//
// Submit is safe from any number of producer threads. Results are
// std::future<StatusOr<Prediction>>: queue overflow, preprocessing failures,
// load shedding, deadline expiry (with stage attribution), and shutdown all
// surface as typed Status errors on the future, never as exceptions, and
// every accepted request's future is always resolved — including under
// injected faults (see docs/robustness.md for the fail-point catalog).
//
// When `enable_degraded` is set, model-path failures (Unavailable/Internal —
// e.g. an injected preprocessing fault) are answered from the prediction
// cache (stale-ok) or the reference majority-class prior instead of
// surfacing the error; such answers are tagged via Prediction::source and
// counted in ServeMetrics. Client errors (InvalidArgument) and deadline
// expiry are never masked.
#ifndef DEEPMAP_SERVE_ENGINE_H_
#define DEEPMAP_SERVE_ENGINE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "serve/dynamic_graphs.h"
#include "serve/metrics.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"
#include "serve/replica.h"

namespace deepmap::serve {

/// Per-request submission options.
struct RequestOptions {
  /// Absolute deadline on the steady clock; unset = no deadline. Expired
  /// requests fail with DeadlineExceeded naming the stage that noticed
  /// ("admission", "preprocess", or "forward").
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Fair-share accounting bucket for ServeCluster admission; "" is the
  /// default tenant. Ignored by a single InferenceEngine.
  std::string tenant;

  static RequestOptions WithDeadline(std::chrono::microseconds relative) {
    RequestOptions o;
    o.deadline = std::chrono::steady_clock::now() + relative;
    return o;
  }
};

/// Batched, cached classification service over one ServableModel.
class InferenceEngine {
 public:
  /// Queue-depth + latency driven load shedding, applied at admission to
  /// cache-missing requests. Defaults disable both signals, preserving the
  /// accept-until-queue-full behavior.
  struct AdmissionOptions {
    /// Shedding starts when queue depth exceeds this fraction of
    /// queue_capacity, ramping linearly to certain shed at a full queue.
    /// >= 1 disables the queue signal.
    double queue_shed_watermark = 1.0;
    /// Observed p95 total latency (us) above which shedding starts, ramping
    /// to certain shed at 2x the target. 0 disables the latency signal.
    double p95_target_us = 0.0;
    /// Seed of the shed-decision RNG stream (deterministic for tests).
    uint64_t seed = 0x5eed;
  };

  /// Bounded retry with exponential backoff inside Classify(). Only
  /// retryable errors (ResourceExhausted, Unavailable — shed, queue-full,
  /// injected/transient faults) are retried, and never past the deadline.
  struct RetryOptions {
    int max_attempts = 1;  // total attempts; 1 = no retries
    int64_t initial_backoff_us = 200;
    double backoff_multiplier = 2.0;
    int64_t max_backoff_us = 5000;
  };

  struct Options {
    MicroBatcher::Options batcher;
    /// Prediction-cache entries; 0 disables caching (and skips hash
    /// computation on the submit path entirely).
    size_t cache_capacity = 4096;
    /// WL refinement rounds for the cache key.
    int cache_wl_iterations = 2;
    /// Lock stripes of the prediction cache: the WL key hash picks a shard,
    /// each with its own mutex + LRU list, so concurrent submitters don't
    /// serialize on one cache lock. 1 = the historical single-lock cache.
    size_t cache_shards = 4;
    /// Worker threads for preprocessing / forward sharding; 0 = hardware
    /// concurrency.
    size_t num_threads = 0;
    AdmissionOptions admission;
    RetryOptions retry;
    /// Registry backing ServeMetrics; must outlive the engine. nullptr (the
    /// default) gives the engine a private registry, so co-resident engines
    /// never share counters. Inject one to aggregate engines into a single
    /// Prometheus scrape.
    obs::MetricsRegistry* metrics_registry = nullptr;
    /// Answer model-path failures from the cache (stale-ok) or the
    /// majority-class prior instead of erroring. Off by default: errors
    /// surface unless the operator opts into degraded service.
    bool enable_degraded = false;
  };

  InferenceEngine(std::shared_ptr<ServableModel> model,
                  const Options& options);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one graph for classification.
  std::future<StatusOr<Prediction>> Submit(const graph::Graph& g,
                                           const RequestOptions& request);
  std::future<StatusOr<Prediction>> Submit(const graph::Graph& g) {
    return Submit(g, RequestOptions{});
  }

  /// Synchronous convenience wrapper: Submit + wait, with bounded
  /// retry-with-backoff (Options::retry) on retryable errors.
  StatusOr<Prediction> Classify(const graph::Graph& g,
                                const RequestOptions& request = {});

  /// Dynamic-graph serving. Register a long-lived graph once, then classify
  /// edge deltas against it: ClassifyDelta applies the delta (incremental
  /// WL repair, not a full rehash), invalidates exactly the stale cache
  /// entry of the pre-delta structure, and answers from cache when the
  /// post-delta structure has been classified before — otherwise it runs
  /// the full pipeline on the mutated graph, so the returned logits are
  /// bit-identical to a fresh Classify of that graph.
  Status RegisterDynamicGraph(const std::string& id, graph::Graph g);
  Status UnregisterDynamicGraph(const std::string& id);

  /// Applies `updates` to the registered graph `id` (atomically: an invalid
  /// delta leaves the graph untouched) and classifies the result. The
  /// mutation persists even when classification itself fails — the delta
  /// describes the world, not the request.
  StatusOr<Prediction> ClassifyDelta(
      const std::string& id, const std::vector<graph::EdgeUpdate>& updates,
      const RequestOptions& request = {});

  /// Blocks until every previously submitted request has been answered.
  void Drain();

  const ServeMetrics& metrics() const { return metrics_; }
  const PredictionCache& cache() const { return cache_; }
  const ServableModel& model() const { return *model_; }
  const DynamicGraphStore& dynamic_graphs() const { return dynamic_graphs_; }

  /// Observed p95 total latency (us) over the recent-request window; 0
  /// until enough samples accumulate. Drives the admission controller.
  double observed_p95_us() const { return p95_us_.load(std::memory_order_relaxed); }

 private:
  /// Submit with the cache key already decided: `cache_key` empty = compute
  /// it here (the plain Submit path); `lookup_cache` false = skip the
  /// admission-time lookup but still warm the cache under the key after the
  /// forward pass (the ClassifyDelta miss path, which has already looked
  /// the key up and must not double-count the miss).
  std::future<StatusOr<Prediction>> SubmitPrepared(const graph::Graph& g,
                                                   const RequestOptions& request,
                                                   std::string cache_key,
                                                   bool lookup_cache);

  /// Admission-control decision for one cache-missing request; fills
  /// `detail` with the depth/latency evidence when shedding.
  bool ShouldShed(std::string* detail);

  /// Feeds the sliding window behind observed_p95_us().
  void RecordLatencySample(double total_us);

  std::shared_ptr<ServableModel> model_;
  Options options_;
  ServeMetrics metrics_;
  PredictionCache cache_;
  ThreadPool pool_;
  /// Fixed handle over model_ (a single engine never hot-swaps; the handle
  /// exists because BatchPipeline is shared with the self-healing cluster,
  /// which does).
  ServableHandle servable_;
  BatchPipeline pipeline_;  // runs each dispatched batch (Execute path)

  // Recent total-latency window for the admission controller: cheap to
  // update per request, p95 recomputed every kP95Refresh samples.
  static constexpr size_t kP95Window = 256;
  static constexpr size_t kP95Refresh = 32;
  std::mutex latency_mu_;
  std::array<double, kP95Window> latency_window_{};
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;
  std::atomic<double> p95_us_{0.0};

  std::mutex admission_mu_;  // guards admission_rng_
  Rng admission_rng_;

  /// Registered graphs for ClassifyDelta (keys at cache_wl_iterations so
  /// they collide with Submit's).
  DynamicGraphStore dynamic_graphs_;

  std::unique_ptr<MicroBatcher> batcher_;  // last member: stops first
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_ENGINE_H_
