// The replica layer of the serving stack: the staged batch pipeline shared
// by every consumer of ServeRequest batches, and the worker replica that
// runs it behind a bounded per-replica queue.
//
// BatchPipeline is InferenceEngine's former HandleBatch split into explicit
// stages so a caller can interleave work between them:
//
//   Begin       pin the current servable (hot reload swaps between batches,
//               never inside one), snapshot dispatch time, record queue
//               depth, arm the whole-batch fault ("serve.engine.batch")
//   Preprocess  feature map -> alignment -> tensor for every not-yet-
//               preprocessed request, sharded on the pipeline's ThreadPool
//   Admit       continuous batching: append newly arrived requests to the
//               in-flight batch (another Preprocess covers just them)
//   Forward     batched compiled forward over survivors, sharded, one
//               scratch per shard ("serve.forward" fault applies per item)
//   Complete    fulfill every promise exactly once (degrading model-path
//               failures when enabled), warm the cache, record metrics
//
// Execute() chains Begin/Preprocess/Forward/Complete — the single-engine
// path, byte-for-byte the pre-refactor behavior. EngineReplica interposes
// an Admit between Preprocess and Forward, which is what turns fixed
// batching windows into continuous batching: a replica never waits out a
// max_wait_us timer; it starts on whatever is queued and absorbs arrivals
// into the batch it is already running.
//
// EngineReplica owns a bounded deque (its slice of the cluster's admission
// capacity), a private ThreadPool (ThreadPool::Wait is a whole-pool
// barrier, so replicas cannot share one), and a worker thread that pops its
// own queue FIFO — and, when idle, steals the front half of the longest
// *healthy* sibling queue, so a burst routed to one replica is drained by
// all of them. Replicas coordinate through DispatchState: one mutex/cv pair
// for wakeup and drain, plus the pending/active/detached counts that make
// shutdown and Drain race-free.
//
// Self-healing support: every popped batch is parked in an "in-flight slot"
// before execution. The worker claims it (kParked -> kExecuting) just
// before running the pipeline; the cluster's Supervisor confiscates it
// (kParked -> empty) when the watchdog declares the worker hung or dead.
// The slot transition is the exactly-once handoff — whichever side wins
// owns every promise in the batch, so a recovered request is never answered
// twice. The "serve.replica.hang" fail point parks the worker on a
// condition variable (a restartable simulated stall) and
// "serve.replica.crash" makes the worker thread exit, both with the batch
// still parked for the supervisor to recover.
#ifndef DEEPMAP_SERVE_REPLICA_H_
#define DEEPMAP_SERVE_REPLICA_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "serve/metrics.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"

namespace deepmap::serve {

/// Staged execution of one batch of requests against the current servable
/// of a ServableHandle. Thread-compatible: one State is owned by one
/// thread; the pipeline object itself holds no per-batch state and may back
/// any number of sequential batches.
class BatchPipeline {
 public:
  struct Hooks {
    /// Per request, with its submit->resolved latency in microseconds; feeds
    /// the engine's admission-controller p95 window.
    std::function<void(double total_us)> on_latency_sample;
    /// Per request, after its promise is resolved; feeds the cluster's
    /// per-tenant in-flight accounting.
    std::function<void(const ServeRequest& request)> on_complete;
  };

  /// All pointers must outlive the pipeline. `cache` may be null (caching
  /// disabled); `pool` is the preprocessing/forward sharding pool.
  BatchPipeline(ServableHandle* servable, ThreadPool* pool,
                PredictionCache* cache, ServeMetrics* metrics,
                bool enable_degraded, Hooks hooks = {});

  /// Per-batch working set. `batch[0, preprocessed)` has been through
  /// Preprocess; parallel arrays are indexed like `batch`.
  struct State {
    std::vector<ServeRequest> batch;
    /// The servable pinned at Begin. Every stage of this batch — including
    /// continuous-batching admits — runs against this version, even if a
    /// hot reload swaps the handle mid-batch.
    std::shared_ptr<ServableModel> model;
    std::chrono::steady_clock::time_point dispatch_time;
    Status batch_fault;  // whole-batch injected fault, set at Begin
    std::vector<Status> statuses;
    std::vector<const char*> deadline_stage;
    std::vector<nn::Tensor> inputs;
    std::vector<double> preprocess_us;
    std::vector<Prediction> predictions;
    std::vector<double> forward_us;
    size_t preprocessed = 0;
  };

  void Begin(State* state, std::vector<ServeRequest>&& batch,
             size_t queue_depth_after);
  void Preprocess(State* state);
  /// Appends `more` to the in-flight batch; the next Preprocess covers
  /// exactly the appended requests. Must be called before Forward.
  void Admit(State* state, std::vector<ServeRequest>&& more);
  void Forward(State* state);
  void Complete(State* state);

  /// Begin + Preprocess + Forward + Complete under the "serve.batch" span —
  /// the single-engine dispatch path.
  void Execute(std::vector<ServeRequest>&& batch, size_t queue_depth_after);

 private:
  ServableHandle* servable_;
  ThreadPool* pool_;
  PredictionCache* cache_;  // null = caching disabled
  ServeMetrics* metrics_;
  bool enable_degraded_;
  Hooks hooks_;
};

/// Dispatchability of one replica. Anything but kHealthy is skipped by
/// join-shortest-queue dispatch and by work stealing: the supervisor owns
/// an unhealthy replica's backlog until it restarts the worker.
enum class ReplicaHealth : int { kHealthy = 0, kUnhealthy = 1 };

/// Coordination state shared by every replica of one cluster.
struct DispatchState {
  std::mutex mu;
  /// Signaled on enqueue and at stop; replicas wait here when idle.
  std::condition_variable work_cv;
  /// Signaled when pending, active_batches and detached all reach zero.
  std::condition_variable drain_cv;
  /// Requests enqueued on some replica queue and not yet popped.
  int64_t pending = 0;
  /// Batches popped and currently inside the pipeline.
  int64_t active_batches = 0;
  /// Requests confiscated from a failed replica and held by the supervisor
  /// — neither queued nor in a batch, but not yet re-enqueued or resolved.
  /// Drain() must wait for them too.
  int64_t detached = 0;
  /// Number of Drain() calls currently waiting. While nonzero, Submit
  /// rejects with a typed retryable Unavailable instead of racing the
  /// pending/active accounting the drain predicate reads.
  int draining = 0;
  bool stopping = false;
};

/// One serving replica: bounded queue + worker thread + private pool.
class EngineReplica {
 public:
  struct Options {
    int max_batch = 32;
    size_t queue_capacity = 256;
    /// Worker threads of the replica's private preprocessing/forward pool.
    size_t num_threads = 1;
    /// Admit queued arrivals into the in-flight batch after its preprocess
    /// stage (continuous batching). Off = plain pop-and-run batches.
    bool continuous_batching = true;
    /// Steal from the longest healthy sibling queue when the own queue is
    /// empty.
    bool enable_work_stealing = true;
    /// Forwarded to the pipeline: answer model-path failures from the cache
    /// (stale-ok) or the fallback prior instead of erroring.
    bool enable_degraded = false;
  };

  /// `cluster_metrics` may be null (no cluster-level accounting). All
  /// pointers must outlive the replica. The worker thread starts in
  /// Start(), not here, so the cluster can finish wiring siblings first.
  EngineReplica(size_t index, const Options& options, ServableHandle* servable,
                PredictionCache* cache, ServeMetrics* metrics,
                ClusterMetrics* cluster_metrics, DispatchState* dispatch,
                BatchPipeline::Hooks hooks);
  ~EngineReplica();

  EngineReplica(const EngineReplica&) = delete;
  EngineReplica& operator=(const EngineReplica&) = delete;

  /// Launches the worker thread. `siblings` is the cluster's replica array
  /// (this replica included; it skips itself when stealing) and must stay
  /// valid until Join().
  void Start(const std::vector<std::unique_ptr<EngineReplica>>* siblings);

  /// Joins the worker thread. The caller must first set
  /// DispatchState::stopping under its mutex, notify work_cv, and
  /// AbandonStall() so a simulated hang cannot block the join.
  void Join();

  /// Bounded push; returns false (leaving the request untouched) when the
  /// queue is at capacity. The caller updates DispatchState::pending and
  /// notifies work_cv — enqueue and wakeup are split so the dispatcher can
  /// batch them.
  bool TryEnqueue(ServeRequest&& request);

  /// Queue depth (relaxed; the dispatcher's join-shortest-queue signal).
  size_t depth() const { return depth_.load(std::memory_order_relaxed); }

  size_t index() const { return index_; }
  const Options& options() const { return options_; }

  // --- Supervision surface (used by serve::Supervisor and tests) ---------

  ReplicaHealth health() const {
    return static_cast<ReplicaHealth>(
        health_.load(std::memory_order_acquire));
  }
  /// Supervisor-owned transition (also a test hook): dispatch and stealing
  /// skip any replica not kHealthy.
  void set_health(ReplicaHealth health) {
    health_.store(static_cast<int>(health), std::memory_order_release);
  }

  /// True once the worker thread has returned (simulated crash, abandoned
  /// stall, or normal shutdown). The watchdog's crash signal.
  bool worker_exited() const {
    return worker_exited_.load(std::memory_order_acquire);
  }

  /// Monotone progress counter, bumped after every executed batch.
  int64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }

  /// How long the in-flight batch has been parked without the worker
  /// claiming it; zero when nothing is parked. In normal operation the
  /// parked window is microseconds (pop -> claim); a stalled or dead worker
  /// leaves it growing — the watchdog's hang signal.
  std::chrono::microseconds parked_for() const;

  /// Atomically takes the parked in-flight batch, or returns empty if the
  /// worker already claimed it (or nothing was parked). The caller now owns
  /// every promise in the returned batch — and must repair the dispatch
  /// accounting (one active_batches decrement per non-empty confiscation).
  std::vector<ServeRequest> ConfiscateParkedBatch();

  /// Pops every queued request (supervisor drain of a failed replica, or
  /// the cluster's shutdown sweep). Caller adjusts DispatchState::pending.
  std::vector<ServeRequest> DrainQueue();

  /// Wakes a worker stalled on the "serve.replica.hang" fail point; the
  /// woken worker exits (after finishing its batch if it still owns one) so
  /// Restart() or Join() can proceed. Safe to call when no stall is active.
  void AbandonStall();

  /// Joins the exited worker thread and launches a fresh one. Precondition:
  /// worker_exited(). The new worker immediately serves the queue again.
  void Restart();

 private:
  /// Ownership of the popped-but-not-yet-executed batch. The kParked ->
  /// kExecuting (worker) vs kParked -> kNone (supervisor confiscation)
  /// transition is the exactly-once handoff.
  enum class InflightState { kNone, kParked, kExecuting };

  void Loop();
  void ProcessBatch(std::vector<ServeRequest>&& batch);
  /// Pops up to `max` requests from the front of the own queue.
  std::vector<ServeRequest> PopOwn(size_t max);
  /// Steals the front half (capped at max_batch) of the longest healthy
  /// sibling queue; empty when there is nothing to steal.
  std::vector<ServeRequest> Steal();
  /// Any healthy sibling with queued work (the steal-eligibility signal the
  /// idle-wait predicate uses; an unhealthy sibling's backlog belongs to
  /// the supervisor and must not keep workers spinning).
  bool HasStealableBacklog() const;
  /// Parks on stall_cv_ until AbandonStall() ("serve.replica.hang").
  void SimulateStall();

  const size_t index_;
  const Options options_;
  ServableHandle* servable_;
  ServeMetrics* metrics_;
  ClusterMetrics* cluster_metrics_;
  DispatchState* dispatch_;
  const std::vector<std::unique_ptr<EngineReplica>>* siblings_ = nullptr;
  const std::string span_name_;  // "serve.replica<i>.batch"

  ThreadPool pool_;
  BatchPipeline pipeline_;

  mutable std::mutex mu_;  // guards queue_
  std::deque<ServeRequest> queue_;
  std::atomic<size_t> depth_{0};

  std::atomic<int> health_{static_cast<int>(ReplicaHealth::kHealthy)};
  std::atomic<bool> worker_exited_{false};
  std::atomic<int64_t> heartbeat_{0};

  /// In-flight slot: the popped batch between dequeue and execution.
  mutable std::mutex inflight_mu_;
  InflightState inflight_state_ = InflightState::kNone;
  std::vector<ServeRequest> inflight_batch_;
  std::chrono::steady_clock::time_point parked_since_;

  /// Simulated-hang machinery ("serve.replica.hang").
  std::mutex stall_mu_;
  std::condition_variable stall_cv_;
  bool stall_abandoned_ = false;

  std::thread worker_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_REPLICA_H_
