// DynamicGraphStore: registered long-lived graphs that serving mutates in
// place via edge deltas (ClassifyDelta on InferenceEngine / ServeCluster).
//
// Each registered graph is a graph::DynamicGraph, so applying a delta
// repairs the WL hashes incrementally instead of rehashing the whole graph,
// and the store hands back the BEFORE and AFTER prediction-cache keys of
// the mutation. The caller uses them for exact invalidation: erase the old
// key (that prediction describes a graph that no longer exists), look up
// the new one (a delta-then-revert sequence, or two registered graphs
// converging on the same structure, hits without running the model).
//
// Locking is two-level: a store mutex guards the id map, a per-entry mutex
// serializes deltas against the same graph. Deltas on different graphs
// never contend, and neither level is held while the model runs. Entries
// are shared_ptr-owned: a lookup copies the reference under the store
// mutex, so a concurrent Unregister only drops the map's reference and the
// entry outlives (and is destroyed after) any delta still using it.
#ifndef DEEPMAP_SERVE_DYNAMIC_GRAPHS_H_
#define DEEPMAP_SERVE_DYNAMIC_GRAPHS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"

namespace deepmap::serve {

/// Outcome of one ApplyDelta: the mutated snapshot plus the cache keys the
/// delta moved the graph between.
struct DeltaResult {
  graph::Graph graph;   // snapshot after the delta
  std::string old_key;  // prediction-cache key before
  std::string new_key;  // prediction-cache key after
  int64_t applied = 0;  // edge updates applied
};

/// Thread-safe id -> DynamicGraph map.
class DynamicGraphStore {
 public:
  /// `wl_iterations` must match the serving cache key's depth (the keys
  /// this store computes and the ones Submit computes must collide).
  explicit DynamicGraphStore(int wl_iterations);

  /// Registers `g` under `id`; FailedPrecondition if the id is taken.
  Status Register(const std::string& id, graph::Graph g);

  /// Drops `id`; NotFound if absent. A delta already in flight against the
  /// entry finishes on its own reference; the entry is freed when the last
  /// holder releases it.
  Status Unregister(const std::string& id);

  /// Applies `updates` atomically to `id` (graph::DynamicGraph::ApplyAll:
  /// an invalid update rolls back the whole batch and the graph is
  /// untouched). NotFound for an unknown id, InvalidArgument (from the
  /// rollback) for a bad delta. An empty delta is valid: keys equal, zero
  /// applied — a pure cache probe.
  StatusOr<DeltaResult> ApplyDelta(
      const std::string& id, const std::vector<graph::EdgeUpdate>& updates);

  /// Copy of the current graph; NotFound if absent.
  StatusOr<graph::Graph> Snapshot(const std::string& id) const;

  /// Current prediction-cache key of `id`; NotFound if absent.
  StatusOr<std::string> CacheKey(const std::string& id) const;

  size_t size() const;
  int wl_iterations() const { return wl_iterations_; }

 private:
  struct Entry {
    explicit Entry(graph::Graph g, const graph::DynamicGraphOptions& options)
        : dyn(std::move(g), options) {}
    std::mutex mu;
    graph::DynamicGraph dyn;
  };

  /// Looks up the entry under mu_ and returns a shared reference (null if
  /// absent). The copy keeps the entry — and its mutex — alive even if a
  /// concurrent Unregister erases the map's reference before the caller
  /// locks entry->mu.
  std::shared_ptr<Entry> Find(const std::string& id) const;

  const int wl_iterations_;
  mutable std::mutex mu_;  // guards graphs_ (the map, not the entries)
  std::unordered_map<std::string, std::shared_ptr<Entry>> graphs_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_DYNAMIC_GRAPHS_H_
