// Serving-time preprocessing: request graph -> CNN input tensor.
//
// At training time the whole pipeline (vertex feature maps -> vocabulary ->
// eigenvector-centrality alignment -> receptive fields -> dense tensor) is
// computed over the full dataset. To classify a graph that arrives at
// serving time the same state must be reproduced:
//   - the dense feature scheme (vocabulary / hashing, log scaling, column
//     scales) is rebuilt from the reference (training) dataset and frozen,
//   - the WL color dictionary is replayed over the reference graphs so that
//     request-graph colors are assigned the same ids the model was trained
//     on (WlRefinement dictionaries are shared, deterministic state),
//   - the sequence length w is pinned to the training-time maximum.
// Request graphs then go through the identical per-graph steps, with one
// serving optimization: each vertex's dense row is densified once and reused
// across all receptive-field positions (the offline path re-densifies per
// (slot, position), i.e. up to r times per vertex).
//
// Preprocess() is thread-safe; the stateful kernels (WL dictionary growth
// for unseen signatures, graphlet sampling RNG) are serialized internally.
#ifndef DEEPMAP_SERVE_PREPROCESSOR_H_
#define DEEPMAP_SERVE_PREPROCESSOR_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/deepmap.h"
#include "graph/dataset.h"
#include "kernels/vertex_feature_map.h"
#include "kernels/wl.h"
#include "nn/tensor.h"

namespace deepmap::serve {

/// Rebuilds training-time preprocessing state and applies it to request
/// graphs.
class Preprocessor {
 public:
  /// `reference` is the dataset the model was trained on (or a dataset with
  /// identical preprocessing statistics); `config` must match training.
  Preprocessor(const graph::GraphDataset& reference,
               const core::DeepMapConfig& config);

  int feature_dim() const { return features_.dim(); }
  int sequence_length() const { return sequence_length_; }
  const kernels::DatasetVertexFeatures& features() const { return features_; }

  /// Builds the [w*r, m] CNN input for one request graph. Fails for empty
  /// graphs and for graphs with more vertices than the serving sequence
  /// length w.
  StatusOr<nn::Tensor> Preprocess(const graph::Graph& g);

 private:
  /// Per-vertex sparse maps for a request graph (locks for stateful kinds).
  std::vector<kernels::SparseFeatureMap> ComputeMaps(const graph::Graph& g);

  core::DeepMapConfig config_;
  kernels::DatasetVertexFeatures features_;
  int sequence_length_;
  std::mutex mu_;  // guards refinery_ and rng_
  std::unique_ptr<kernels::WlRefinement> refinery_;
  Rng rng_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_PREPROCESSOR_H_
