#include "serve/cluster.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace deepmap::serve {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

bool Expired(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= deadline;
}

Status DeadlineError(const char* stage) {
  return Status::DeadlineExceeded(
      std::string("request deadline expired (stage=") + stage + ")");
}

}  // namespace

ServeCluster::ServeCluster(std::shared_ptr<ServableModel> model,
                           const Options& options)
    : servable_(std::move(model)),
      options_(options),
      metrics_(options.metrics_registry),
      cluster_metrics_(&metrics_.registry(),
                       std::max<size_t>(options.num_replicas, 1)),
      health_metrics_(&metrics_.registry(),
                      std::max<size_t>(options.num_replicas, 1)),
      cache_(options.cache_capacity,
             options.cache_shards > 0
                 ? options.cache_shards
                 : 2 * std::max<size_t>(options.num_replicas, 1),
             &metrics_.registry()),
      dynamic_graphs_(options.cache_wl_iterations) {
  options_.num_replicas = std::max<size_t>(options_.num_replicas, 1);
  const std::shared_ptr<ServableModel> initial = servable_.Get();
  DEEPMAP_LOG(Info) << "ServeCluster serving model '" << initial->name()
                    << "' v" << initial->version() << " via backend '"
                    << initial->backend_name() << "' on "
                    << options_.num_replicas << " replica(s)";
  BatchPipeline::Hooks hooks;
  hooks.on_complete = [this](const ServeRequest& r) { OnRequestComplete(r); };
  replicas_.reserve(options_.num_replicas);
  for (size_t i = 0; i < options_.num_replicas; ++i) {
    replicas_.push_back(std::make_unique<EngineReplica>(
        i, options_.replica, &servable_, &cache_, &metrics_,
        &cluster_metrics_, &dispatch_, hooks));
  }
  // Two-phase start: every replica must exist before any worker runs, since
  // idle workers scan the sibling array for steal victims.
  for (auto& replica : replicas_) replica->Start(&replicas_);
  supervisor_ = std::make_unique<Supervisor>(
      options_.supervision, &replicas_, &dispatch_, &servable_, &metrics_,
      &health_metrics_,
      [this](const ServeRequest& r) { OnRequestComplete(r); });
  supervisor_->Start();
}

ServeCluster::~ServeCluster() {
  // Stop the watchdog first: a scan racing shutdown could confiscate a
  // batch from a worker that is merely draining, or restart one that is
  // exiting on purpose.
  supervisor_->Stop();
  {
    std::lock_guard<std::mutex> lock(dispatch_.mu);
    dispatch_.stopping = true;
  }
  // Workers drain their queues (and, with stealing, each other's) before
  // exiting, so every accepted promise resolves. A worker parked on a
  // simulated stall is released; it finishes its batch (if the supervisor
  // never confiscated it) and exits.
  dispatch_.work_cv.notify_all();
  for (auto& replica : replicas_) replica->AbandonStall();
  for (auto& replica : replicas_) replica->Join();
  // Sweep: requests stranded on replicas that failed too close to shutdown
  // for the supervisor to recover (unhealthy queues are skipped by both
  // dispatch and stealing, so nothing else will answer them).
  for (auto& replica : replicas_) {
    std::vector<ServeRequest> stranded = replica->ConfiscateParkedBatch();
    for (ServeRequest& r : replica->DrainQueue()) {
      stranded.push_back(std::move(r));
    }
    for (ServeRequest& r : stranded) {
      metrics_.RecordOutcome(ServeOutcome::kError);
      r.promise.set_value(StatusOr<Prediction>(Status::Unavailable(
          "replica failed; cluster shut down before request could be "
          "re-dispatched")));
      OnRequestComplete(r);
    }
  }
}

void ServeCluster::Drain() {
  std::unique_lock<std::mutex> lock(dispatch_.mu);
  ++dispatch_.draining;
  dispatch_.drain_cv.wait(lock, [this] {
    return dispatch_.pending == 0 && dispatch_.active_batches == 0 &&
           dispatch_.detached == 0;
  });
  --dispatch_.draining;
}

int ServeCluster::draining() const {
  std::lock_guard<std::mutex> lock(dispatch_.mu);
  return dispatch_.draining;
}

void ServeCluster::UpdateModel(std::shared_ptr<ServableModel> next) {
  DEEPMAP_CHECK(next != nullptr);
  const int new_version = next->version();
  const std::shared_ptr<ServableModel> old = servable_.Swap(std::move(next));
  // Every cached prediction was computed by the retired version; serving it
  // as a fresh answer for the new one would silently mix model versions.
  cache_.Clear();
  health_metrics_.RecordModelSwap();
  DEEPMAP_LOG(Info) << "ServeCluster: hot-swapped model '" << old->name()
                    << "' v" << old->version() << " -> v" << new_version
                    << " (cache cleared)";
}

int64_t ServeCluster::tenant_inflight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(dispatch_.mu);
  auto it = tenant_inflight_.find(tenant);
  return it == tenant_inflight_.end() ? 0 : it->second;
}

std::future<StatusOr<Prediction>> ServeCluster::Submit(
    const graph::Graph& g, const RequestOptions& request) {
  return SubmitInternal(g, request, /*target=*/-1);
}

Status ServeCluster::RegisterDynamicGraph(const std::string& id,
                                          graph::Graph g) {
  return dynamic_graphs_.Register(id, std::move(g));
}

Status ServeCluster::UnregisterDynamicGraph(const std::string& id) {
  return dynamic_graphs_.Unregister(id);
}

StatusOr<Prediction> ServeCluster::ClassifyDelta(
    const std::string& id, const std::vector<graph::EdgeUpdate>& updates,
    const RequestOptions& request) {
  DEEPMAP_TRACE_SPAN("serve.cluster.classify_delta", "serve");
  const auto start = std::chrono::steady_clock::now();
  if (request.deadline.has_value() && Expired(*request.deadline)) {
    metrics_.RecordDeadlineExceeded("admission");
    return DeadlineError("admission");
  }
  StatusOr<DeltaResult> delta = dynamic_graphs_.ApplyDelta(id, updates);
  if (!delta.ok()) return delta.status();
  metrics_.RecordDynamicUpdate(delta.value().applied);
  if (options_.cache_capacity > 0) {
    // Exact invalidation: only the pre-delta structure's entry is stale.
    // (A no-op delta leaves the keys equal — never drop a live entry.)
    if (delta.value().old_key != delta.value().new_key) {
      cache_.Erase(delta.value().old_key);
    }
    if (std::optional<Prediction> hit = cache_.Lookup(delta.value().new_key)) {
      metrics_.RecordDynamicIncrementalHit();
      RequestTiming timing;
      timing.cache_hit = true;
      timing.total_us = MicrosSince(start, std::chrono::steady_clock::now());
      metrics_.RecordRequest(timing);
      metrics_.RecordOutcome(ServeOutcome::kOk);
      return std::move(*hit);
    }
  }
  // Miss: normal dispatch on the mutated snapshot, reusing the key the
  // store computed and skipping the second lookup (the miss above is the
  // one the cache counters should see).
  metrics_.RecordDynamicFullRecompute();
  return SubmitInternal(delta.value().graph, request, /*target=*/-1,
                        std::move(delta.value().new_key),
                        /*lookup_cache=*/false)
      .get();
}

std::future<StatusOr<Prediction>> ServeCluster::SubmitToReplica(
    size_t replica, const graph::Graph& g, const RequestOptions& request) {
  DEEPMAP_CHECK_LT(replica, replicas_.size());
  return SubmitInternal(g, request, static_cast<int>(replica));
}

bool ServeCluster::ShouldShedTenantLocked(const std::string& tenant) const {
  if (options_.fair_share_watermark >= 1.0) return false;
  const double capacity =
      static_cast<double>(replicas_.size()) *
      static_cast<double>(options_.replica.queue_capacity);
  if (capacity <= 0.0) return false;
  if (static_cast<double>(dispatch_.pending) <=
      options_.fair_share_watermark * capacity) {
    return false;  // backlog below the watermark: everyone is admitted
  }
  // Armed. A tenant's fair share is an equal split of the cluster's queue
  // capacity across the tenants currently holding requests (this one
  // included). Tenants below their share — in particular any tenant with
  // nothing in flight — are always admitted, so a flood from one tenant
  // cannot lock the others out.
  auto self = tenant_inflight_.find(tenant);
  const int64_t mine =
      self == tenant_inflight_.end() ? 0 : self->second;
  size_t active = mine > 0 ? 0 : 1;  // count self even when idle
  for (const auto& [name, count] : tenant_inflight_) {
    if (count > 0) ++active;
  }
  const double fair_share = capacity / static_cast<double>(active);
  return static_cast<double>(mine) >= fair_share;
}

void ServeCluster::OnRequestComplete(const ServeRequest& request) {
  std::lock_guard<std::mutex> lock(dispatch_.mu);
  auto it = tenant_inflight_.find(request.tenant);
  if (it == tenant_inflight_.end()) return;
  if (--it->second <= 0) tenant_inflight_.erase(it);
}

std::future<StatusOr<Prediction>> ServeCluster::SubmitInternal(
    const graph::Graph& g, const RequestOptions& request, int target,
    std::string cache_key, bool lookup_cache) {
  DEEPMAP_TRACE_SPAN("serve.cluster.submit", "serve");
  const auto start = std::chrono::steady_clock::now();
  ServeRequest queued;
  queued.enqueue_time = start;
  queued.tenant = request.tenant;
  if (request.deadline.has_value()) queued.deadline = *request.deadline;
  std::future<StatusOr<Prediction>> future = queued.promise.get_future();

  auto reject = [&](Status status) {
    std::promise<StatusOr<Prediction>> rejected;
    std::future<StatusOr<Prediction>> f = rejected.get_future();
    rejected.set_value(StatusOr<Prediction>(std::move(status)));
    return f;
  };

  // Stage "admission": a request that arrives already expired never costs a
  // hash, a queue slot, or a batch.
  if (Expired(queued.deadline)) {
    metrics_.RecordDeadlineExceeded("admission");
    return reject(DeadlineError("admission"));
  }

  if (options_.cache_capacity > 0) {
    queued.cache_key =
        cache_key.empty()
            ? PredictionCache::KeyFor(g, options_.cache_wl_iterations)
            : std::move(cache_key);
    if (lookup_cache) {
      if (std::optional<Prediction> hit = cache_.Lookup(queued.cache_key)) {
        RequestTiming timing;
        timing.cache_hit = true;
        timing.total_us = MicrosSince(start, std::chrono::steady_clock::now());
        metrics_.RecordRequest(timing);
        metrics_.RecordOutcome(ServeOutcome::kOk);
        queued.promise.set_value(std::move(*hit));
        return future;
      }
    }
  }

  // Reserve a pending slot and a tenant slot under the dispatch lock. The
  // pending count is bumped BEFORE the queue push so a worker popping the
  // request can never observe pending going negative — the drain/stop
  // protocol depends on pending being an upper bound on queued work.
  {
    std::lock_guard<std::mutex> lock(dispatch_.mu);
    if (dispatch_.stopping) {
      metrics_.RecordRejected();
      return reject(
          Status::FailedPrecondition("cluster is shutting down"));
    }
    if (dispatch_.draining > 0) {
      // A Drain() is waiting for the backlog to hit zero; admitting more
      // work now would race its predicate (and could starve it forever
      // under sustained traffic). Typed and retryable: once Drain returns,
      // resubmitting succeeds.
      metrics_.RecordRejected();
      return reject(Status::Unavailable(
          "cluster is draining; retry after Drain() returns"));
    }
    if (ShouldShedTenantLocked(queued.tenant)) {
      metrics_.RecordShed();
      cluster_metrics_.RecordTenantShed();
      return reject(Status::ResourceExhausted(
          "fair-share admission shed request (tenant \"" + queued.tenant +
          "\" at share, cluster backlog " +
          std::to_string(dispatch_.pending) + ")"));
    }
    ++dispatch_.pending;
    ++tenant_inflight_[queued.tenant];
  }

  queued.graph = g;
  bool enqueued = false;
  bool any_healthy = true;
  if (target >= 0) {
    enqueued = replicas_[static_cast<size_t>(target)]->TryEnqueue(
        std::move(queued));
  } else {
    // Join-shortest-queue over the healthy replicas with a rotating
    // tie-break; on a full queue, fall through to the next-shortest instead
    // of rejecting outright. An unhealthy replica's worker is hung, dead,
    // or restarting — queueing behind it would strand the request until
    // the supervisor recovered it a second time.
    std::vector<size_t> order;
    order.reserve(replicas_.size());
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i]->health() == ReplicaHealth::kHealthy) {
        order.push_back(i);
      }
    }
    any_healthy = !order.empty();
    if (any_healthy) {
      const size_t base =
          rr_cursor_.fetch_add(1, std::memory_order_relaxed) % order.size();
      std::rotate(order.begin(),
                  order.begin() + static_cast<ptrdiff_t>(base), order.end());
      std::stable_sort(order.begin(), order.end(),
                       [this](size_t a, size_t b) {
                         return replicas_[a]->depth() <
                                replicas_[b]->depth();
                       });
      for (size_t idx : order) {
        if (replicas_[idx]->TryEnqueue(std::move(queued))) {
          enqueued = true;
          break;
        }
      }
    }
  }

  if (!enqueued) {
    // Give the reserved slots back; the promise is still ours to fulfill
    // (TryEnqueue only consumes the request on success).
    {
      std::lock_guard<std::mutex> lock(dispatch_.mu);
      --dispatch_.pending;
      auto it = tenant_inflight_.find(request.tenant);
      if (it != tenant_inflight_.end() && --it->second <= 0) {
        tenant_inflight_.erase(it);
      }
    }
    metrics_.RecordRejected();
    if (!any_healthy) {
      return reject(Status::Unavailable(
          "no healthy replica available (cluster self-healing)"));
    }
    return reject(Status::ResourceExhausted(
        target >= 0 ? "replica queue is full (cluster overloaded)"
                    : "every replica queue is full (cluster overloaded)"));
  }

  // notify_all, not notify_one: with stealing disabled only the owning
  // replica's wait predicate passes, and notify_one could wake a sibling
  // that just goes back to sleep, swallowing the wakeup.
  dispatch_.work_cv.notify_all();
  cluster_metrics_.RecordDispatch();
  return future;
}

}  // namespace deepmap::serve
