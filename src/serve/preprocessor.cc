#include "serve/preprocessor.h"

#include <algorithm>

#include "common/failpoint.h"
#include "core/receptive_field.h"
#include "kernels/graphlet.h"
#include "kernels/shortest_path.h"
#include "kernels/treepp.h"

namespace deepmap::serve {

Preprocessor::Preprocessor(const graph::GraphDataset& reference,
                           const core::DeepMapConfig& config)
    : config_(config),
      features_(kernels::ComputeDatasetVertexFeatures(reference,
                                                      config.features)),
      sequence_length_(std::max(1, reference.MaxVertices())),
      rng_(config.features.seed) {
  if (config_.features.kind == kernels::FeatureMapKind::kWlSubtree) {
    // Replay the training refinement so request graphs are colored with the
    // same dictionary ids the vocabulary (and the model) was built on.
    // WlRefinement is deterministic, so refining the reference graphs in
    // dataset order reproduces the training dictionaries exactly.
    refinery_ = std::make_unique<kernels::WlRefinement>(config_.features.wl);
    for (const graph::Graph& g : reference.graphs()) refinery_->Refine(g);
  }
}

std::vector<kernels::SparseFeatureMap> Preprocessor::ComputeMaps(
    const graph::Graph& g) {
  switch (config_.features.kind) {
    case kernels::FeatureMapKind::kGraphlet: {
      std::lock_guard<std::mutex> lock(mu_);  // sampling RNG is stateful
      return kernels::VertexGraphletFeatureMaps(g, config_.features.graphlet,
                                                rng_);
    }
    case kernels::FeatureMapKind::kShortestPath:
      return kernels::VertexSpFeatureMaps(g, config_.features.shortest_path);
    case kernels::FeatureMapKind::kWlSubtree: {
      std::lock_guard<std::mutex> lock(mu_);  // dictionary may grow
      return kernels::VertexWlFeatureMaps(g, *refinery_);
    }
    case kernels::FeatureMapKind::kTreePp:
      return kernels::VertexTreePpFeatureMaps(g, config_.features.treepp);
  }
  return {};
}

StatusOr<nn::Tensor> Preprocessor::Preprocess(const graph::Graph& g) {
  const int n = g.NumVertices();
  if (n == 0) {
    return Status::InvalidArgument("cannot classify an empty graph");
  }
  if (n > sequence_length_) {
    return Status::InvalidArgument(
        "request graph has " + std::to_string(n) +
        " vertices; the model was compiled for sequences of at most " +
        std::to_string(sequence_length_));
  }
  // After validation: an injected fault models infrastructure failure on a
  // servable graph, not a client error (which keeps its InvalidArgument).
  DEEPMAP_INJECT_FAULT("serve.preprocess");
  const int r = config_.receptive_field_size;
  const int m = features_.dim();

  const std::vector<kernels::SparseFeatureMap> maps = ComputeMaps(g);

  // Densify each vertex once (the offline path re-densifies per receptive
  // field position). Rows are converted to float up front.
  std::vector<std::vector<float>> rows(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    const std::vector<double> dense =
        features_.DensifyRow(maps[static_cast<size_t>(v)]);
    std::vector<float>& row = rows[static_cast<size_t>(v)];
    row.resize(dense.size());
    for (size_t c = 0; c < dense.size(); ++c) {
      row[c] = static_cast<float>(dense[c]);
    }
  }

  Rng* alignment_rng = nullptr;
  Rng local_rng(config_.seed + 0x5eed);
  if (config_.alignment == core::AlignmentMeasure::kRandom) {
    alignment_rng = &local_rng;
  }
  const std::vector<double> centrality =
      core::ComputeCentrality(g, config_.alignment, alignment_rng);
  const std::vector<graph::Vertex> sequence =
      core::GenerateVertexSequence(g, centrality, sequence_length_);

  nn::Tensor input({sequence_length_ * r, m});
  for (int slot = 0; slot < sequence_length_; ++slot) {
    const graph::Vertex v = sequence[static_cast<size_t>(slot)];
    if (v == core::kDummyVertex) continue;  // r zero rows
    const std::vector<graph::Vertex> field =
        core::BuildReceptiveField(g, v, r, centrality);
    for (int pos = 0; pos < r; ++pos) {
      const graph::Vertex u = field[static_cast<size_t>(pos)];
      if (u == core::kDummyVertex) continue;  // zero row
      const std::vector<float>& row = rows[static_cast<size_t>(u)];
      float* dst =
          input.data() + (static_cast<size_t>(slot) * r + pos) * m;
      std::copy(row.begin(), row.end(), dst);
    }
  }
  return input;
}

}  // namespace deepmap::serve
