// MicroBatcher: bounded MPSC request queue with size/deadline coalescing.
//
// Producers (any thread) Submit() requests; a single dispatcher thread
// collects them into batches of up to `max_batch` graphs, or whatever has
// accumulated `max_wait_us` after the oldest pending request was enqueued —
// whichever comes first — and hands each batch to the engine's handler.
// The queue is bounded: Submit fails fast with ResourceExhausted when
// `queue_capacity` requests are already waiting (retryable backpressure
// instead of unbounded memory growth under overload).
//
// Shutdown drains: Stop() dispatches every queued request before joining the
// dispatcher, so no promise is ever dropped.
#ifndef DEEPMAP_SERVE_MICRO_BATCHER_H_
#define DEEPMAP_SERVE_MICRO_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "serve/compiled_model.h"

namespace deepmap::serve {

/// One queued classification request.
struct ServeRequest {
  graph::Graph graph;
  std::string cache_key;  // empty when caching is disabled
  /// Fair-share accounting bucket (ServeCluster); "" = the default tenant.
  std::string tenant;
  std::promise<StatusOr<Prediction>> promise;
  std::chrono::steady_clock::time_point enqueue_time;
  /// Absolute deadline; max() means none. The engine checks it at admission,
  /// before preprocessing, and before the forward pass.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Times this request was recovered from a failed (hung/crashed) replica.
  /// The cluster Supervisor increments it on every re-dispatch; past
  /// Supervisor::Options::max_request_failures the request is quarantined
  /// with a degraded answer instead of being handed to another replica.
  int failures = 0;
};

/// Coalesces single-graph requests into batches.
class MicroBatcher {
 public:
  struct Options {
    int max_batch = 32;        // flush when this many requests are pending
    int max_wait_us = 1000;    // ... or this long after the oldest arrived
    size_t queue_capacity = 1024;
  };

  /// `handler` runs on the dispatcher thread with exclusive ownership of the
  /// batch; `queue_depth_after` is the backlog left behind at dispatch time.
  using BatchHandler =
      std::function<void(std::vector<ServeRequest>&& batch,
                         size_t queue_depth_after)>;

  MicroBatcher(const Options& options, BatchHandler handler);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues a request. Fails — leaving the request's promise untouched —
  /// with ResourceExhausted when the queue is full (retryable backpressure)
  /// and FailedPrecondition when shutting down (permanent). The
  /// "serve.batcher.submit" fail point injects an Unavailable failure here.
  Status Submit(ServeRequest&& request);

  /// Blocks until every request submitted before the call has been handed to
  /// the handler and the handler returned.
  void Drain();

  /// Drains, then joins the dispatcher. Subsequent Submits fail.
  void Stop();

  size_t queue_depth() const;
  const Options& options() const { return options_; }

 private:
  void DispatcherLoop();

  Options options_;
  BatchHandler handler_;
  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<ServeRequest> queue_;
  bool stopping_ = false;
  bool dispatching_ = false;
  std::thread dispatcher_;
};

}  // namespace deepmap::serve

#endif  // DEEPMAP_SERVE_MICRO_BATCHER_H_
