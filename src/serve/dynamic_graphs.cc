#include "serve/dynamic_graphs.h"

#include <utility>

#include "serve/prediction_cache.h"

namespace deepmap::serve {
namespace {

/// Key of the entry's CURRENT graph. Caller holds the entry mutex.
std::string KeyOf(graph::DynamicGraph& dyn) {
  return PredictionCache::KeyFromFingerprint(dyn.graph().NumVertices(),
                                             dyn.graph().NumEdges(),
                                             dyn.Fingerprint());
}

}  // namespace

DynamicGraphStore::DynamicGraphStore(int wl_iterations)
    : wl_iterations_(wl_iterations) {}

Status DynamicGraphStore::Register(const std::string& id, graph::Graph g) {
  graph::DynamicGraphOptions options;
  options.wl_iterations = wl_iterations_;
  auto entry = std::make_shared<Entry>(std::move(g), options);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = graphs_.emplace(id, std::move(entry));
  if (!inserted) {
    return Status::FailedPrecondition("dynamic graph '" + id +
                                      "' already registered");
  }
  return Status::Ok();
}

Status DynamicGraphStore::Unregister(const std::string& id) {
  // Only the map's reference is dropped here. A concurrent ApplyDelta that
  // already copied the shared_ptr (between its Find and locking entry->mu)
  // keeps the entry alive and destroys it when it finishes — so no caller
  // ever locks a destroyed mutex.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(id);
  if (it == graphs_.end()) {
    return Status::NotFound("dynamic graph '" + id + "' is not registered");
  }
  graphs_.erase(it);
  return Status::Ok();
}

std::shared_ptr<DynamicGraphStore::Entry> DynamicGraphStore::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(id);
  return it == graphs_.end() ? nullptr : it->second;
}

StatusOr<DeltaResult> DynamicGraphStore::ApplyDelta(
    const std::string& id, const std::vector<graph::EdgeUpdate>& updates) {
  std::shared_ptr<Entry> entry = Find(id);
  if (entry == nullptr) {
    return Status::NotFound("dynamic graph '" + id + "' is not registered");
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  DeltaResult result;
  result.old_key = KeyOf(entry->dyn);
  if (Status s = entry->dyn.ApplyAll(updates); !s.ok()) return s;
  result.applied = static_cast<int64_t>(updates.size());
  result.new_key = KeyOf(entry->dyn);
  result.graph = entry->dyn.graph();
  return result;
}

StatusOr<graph::Graph> DynamicGraphStore::Snapshot(
    const std::string& id) const {
  std::shared_ptr<Entry> entry = Find(id);
  if (entry == nullptr) {
    return Status::NotFound("dynamic graph '" + id + "' is not registered");
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->dyn.graph();
}

StatusOr<std::string> DynamicGraphStore::CacheKey(
    const std::string& id) const {
  std::shared_ptr<Entry> entry = Find(id);
  if (entry == nullptr) {
    return Status::NotFound("dynamic graph '" + id + "' is not registered");
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  return KeyOf(entry->dyn);
}

size_t DynamicGraphStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace deepmap::serve
