#include "serve/replica.h"

#include <algorithm>

#include "common/check.h"
#include "common/failpoint.h"
#include "obs/trace.h"

namespace deepmap::serve {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

bool Expired(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= deadline;
}

Status DeadlineError(const char* stage) {
  return Status::DeadlineExceeded(
      std::string("request deadline expired (stage=") + stage + ")");
}

/// Infrastructure failures eligible for degraded answers. Client errors
/// (InvalidArgument) and deadline expiry must surface unchanged.
bool Degradable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kInternal;
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchPipeline

BatchPipeline::BatchPipeline(ServableHandle* servable, ThreadPool* pool,
                             PredictionCache* cache, ServeMetrics* metrics,
                             bool enable_degraded, Hooks hooks)
    : servable_(servable),
      pool_(pool),
      cache_(cache),
      metrics_(metrics),
      enable_degraded_(enable_degraded),
      hooks_(std::move(hooks)) {
  DEEPMAP_CHECK(servable_ != nullptr);
  DEEPMAP_CHECK(pool_ != nullptr);
  DEEPMAP_CHECK(metrics_ != nullptr);
}

void BatchPipeline::Begin(State* state, std::vector<ServeRequest>&& batch,
                          size_t queue_depth_after) {
  const size_t n = batch.size();
  state->batch = std::move(batch);
  // Pin the servable for the whole batch: a hot reload that swaps the handle
  // mid-batch must not mix two models' preprocessors/weights in one forward
  // pass. The shared_ptr keeps the old version alive until the batch ends.
  state->model = servable_->Get();
  state->dispatch_time = std::chrono::steady_clock::now();
  metrics_->RecordQueueDepth(queue_depth_after);

  // Whole-batch fault: models a dispatcher-side failure after dequeue. It
  // covers requests admitted into this batch later too — they join a batch
  // whose dispatch already failed. The per-request degradation/error path
  // in Complete still answers every promise.
  if (DEEPMAP_FAILPOINT_TRIGGERED("serve.engine.batch")) {
    state->batch_fault = Status::Unavailable(
        "injected fault at serve.engine.batch (stage=dispatch)");
  }

  state->statuses.resize(n);
  state->deadline_stage.resize(n, nullptr);
  state->inputs.resize(n);
  state->preprocess_us.resize(n, 0.0);
  state->predictions.resize(n);
  state->forward_us.resize(n, 0.0);
}

void BatchPipeline::Admit(State* state, std::vector<ServeRequest>&& more) {
  const size_t n = state->batch.size() + more.size();
  for (ServeRequest& r : more) state->batch.push_back(std::move(r));
  state->statuses.resize(n);
  state->deadline_stage.resize(n, nullptr);
  state->inputs.resize(n);
  state->preprocess_us.resize(n, 0.0);
  state->predictions.resize(n);
  state->forward_us.resize(n, 0.0);
}

void BatchPipeline::Preprocess(State* state) {
  // Covers batch[preprocessed, n): everything on the first call, exactly the
  // admitted tail after an Admit. Requests whose deadline already passed are
  // skipped before costing any preprocessing work.
  const size_t n = state->batch.size();
  Preprocessor& preprocessor = state->model->preprocessor();
  for (size_t i = state->preprocessed; i < n; ++i) {
    if (!state->batch_fault.ok()) {
      state->statuses[i] = state->batch_fault;
      continue;
    }
    if (Expired(state->batch[i].deadline)) {
      state->statuses[i] = DeadlineError("preprocess");
      state->deadline_stage[i] = "preprocess";
      continue;
    }
    pool_->Submit([this, state, i, &preprocessor] {
      DEEPMAP_TRACE_SPAN("serve.preprocess", "serve");
      const auto t0 = std::chrono::steady_clock::now();
      StatusOr<nn::Tensor> result =
          preprocessor.Preprocess(state->batch[i].graph);
      if (result.ok()) {
        state->inputs[i] = std::move(result).value();
      } else {
        state->statuses[i] = result.status();
      }
      state->preprocess_us[i] =
          MicrosSince(t0, std::chrono::steady_clock::now());
    });
  }
  pool_->Wait();
  state->preprocessed = n;
}

void BatchPipeline::Forward(State* state) {
  // Sync point between the pipeline stages (bool intentionally unused):
  // tests park here to expire deadlines after preprocessing but before the
  // forward pass, pinning stage attribution deterministically.
  (void)DEEPMAP_FAILPOINT_TRIGGERED("serve.engine.before_forward");

  // Batched forward pass over requests that survived preprocessing and
  // still have time left, sharded across the pool. Each shard reuses one
  // scratch workspace for its whole slice.
  const size_t n = state->batch.size();
  std::vector<size_t> valid;
  valid.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!state->statuses[i].ok()) continue;
    if (Expired(state->batch[i].deadline)) {
      state->statuses[i] = DeadlineError("forward");
      state->deadline_stage[i] = "forward";
      continue;
    }
    valid.push_back(i);
  }
  if (valid.empty()) return;
  const CompiledModel& compiled = state->model->compiled();
  const size_t num_shards =
      std::min(std::max<size_t>(pool_->num_threads(), 1), valid.size());
  const size_t per_shard = (valid.size() + num_shards - 1) / num_shards;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const size_t begin = shard * per_shard;
    const size_t end = std::min(valid.size(), begin + per_shard);
    if (begin >= end) break;
    pool_->Submit([this, state, &valid, &compiled, begin, end] {
      DEEPMAP_TRACE_SPAN("serve.forward", "serve");
      ForwardScratch scratch;
      for (size_t v = begin; v < end; ++v) {
        const size_t i = valid[v];
        if (DEEPMAP_FAILPOINT_TRIGGERED("serve.forward")) {
          state->statuses[i] = Status::Unavailable(
              "injected fault at serve.forward (stage=forward)");
          continue;
        }
        const auto t0 = std::chrono::steady_clock::now();
        state->predictions[i] = compiled.Predict(state->inputs[i], &scratch);
        state->forward_us[i] =
            MicrosSince(t0, std::chrono::steady_clock::now());
      }
    });
  }
  pool_->Wait();
}

void BatchPipeline::Complete(State* state) {
  // Warm the cache, fulfill promises (degrading model-path failures when
  // enabled), record metrics. Every promise in the batch is resolved
  // exactly once on every path through this loop.
  DEEPMAP_TRACE_SPAN("serve.complete", "serve");
  const size_t n = state->batch.size();
  metrics_->RecordBatch(static_cast<int>(n));
  for (size_t i = 0; i < n; ++i) {
    ServeRequest& request = state->batch[i];
    RequestTiming timing;
    timing.queue_us = MicrosSince(request.enqueue_time, state->dispatch_time);
    timing.preprocess_us = state->preprocess_us[i];
    timing.forward_us = state->forward_us[i];
    timing.total_us =
        MicrosSince(request.enqueue_time, std::chrono::steady_clock::now());
    metrics_->RecordRequest(timing);
    if (hooks_.on_latency_sample) hooks_.on_latency_sample(timing.total_us);
    if (state->statuses[i].ok()) {
      if (cache_ != nullptr && !request.cache_key.empty()) {
        cache_->Insert(request.cache_key, state->predictions[i]);
      }
      metrics_->RecordOutcome(ServeOutcome::kOk);
      request.promise.set_value(std::move(state->predictions[i]));
      if (hooks_.on_complete) hooks_.on_complete(request);
      continue;
    }
    const StatusCode code = state->statuses[i].code();
    if (code == StatusCode::kDeadlineExceeded) {
      metrics_->RecordDeadlineExceeded(state->deadline_stage[i] != nullptr
                                           ? state->deadline_stage[i]
                                           : "unknown");
      request.promise.set_value(StatusOr<Prediction>(state->statuses[i]));
      if (hooks_.on_complete) hooks_.on_complete(request);
      continue;
    }
    if (enable_degraded_ && Degradable(code)) {
      // Stale-ok cache answer: the key may have been warmed by a sibling
      // request (or the admission lookup may have hit an injected outage)
      // since this request was admitted.
      bool answered = false;
      if (cache_ != nullptr && !request.cache_key.empty()) {
        if (std::optional<Prediction> stale =
                cache_->Lookup(request.cache_key)) {
          stale->source = PredictionSource::kStaleCache;
          metrics_->RecordDegradedStale();
          request.promise.set_value(std::move(*stale));
          answered = true;
        }
      }
      if (!answered) {
        metrics_->RecordDegradedFallback();
        request.promise.set_value(state->model->fallback_prediction());
      }
      if (hooks_.on_complete) hooks_.on_complete(request);
      continue;
    }
    metrics_->RecordOutcome(ServeOutcome::kError);
    request.promise.set_value(StatusOr<Prediction>(state->statuses[i]));
    if (hooks_.on_complete) hooks_.on_complete(request);
  }
}

void BatchPipeline::Execute(std::vector<ServeRequest>&& batch,
                            size_t queue_depth_after) {
  DEEPMAP_TRACE_SPAN("serve.batch", "serve");
  State state;
  Begin(&state, std::move(batch), queue_depth_after);
  Preprocess(&state);
  Forward(&state);
  Complete(&state);
}

// ---------------------------------------------------------------------------
// EngineReplica

EngineReplica::EngineReplica(size_t index, const Options& options,
                             ServableHandle* servable, PredictionCache* cache,
                             ServeMetrics* metrics,
                             ClusterMetrics* cluster_metrics,
                             DispatchState* dispatch,
                             BatchPipeline::Hooks hooks)
    : index_(index),
      options_(options),
      servable_(servable),
      metrics_(metrics),
      cluster_metrics_(cluster_metrics),
      dispatch_(dispatch),
      span_name_("serve.replica" + std::to_string(index) + ".batch"),
      pool_(std::max<size_t>(options.num_threads, 1)),
      pipeline_(servable, &pool_, cache, metrics, options.enable_degraded,
                std::move(hooks)) {
  DEEPMAP_CHECK_GT(options_.max_batch, 0);
  DEEPMAP_CHECK_GT(options_.queue_capacity, size_t{0});
  DEEPMAP_CHECK(dispatch_ != nullptr);
}

EngineReplica::~EngineReplica() {
  // The owner (ServeCluster) must have stopped and joined the worker; a
  // still-running worker here would use freed state.
  DEEPMAP_CHECK(!worker_.joinable());
}

void EngineReplica::Start(
    const std::vector<std::unique_ptr<EngineReplica>>* siblings) {
  DEEPMAP_CHECK(!worker_.joinable());
  siblings_ = siblings;
  worker_ = std::thread([this] { Loop(); });
}

void EngineReplica::Join() {
  if (worker_.joinable()) worker_.join();
}

bool EngineReplica::TryEnqueue(ServeRequest&& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.size() >= options_.queue_capacity) return false;
  queue_.push_back(std::move(request));
  depth_.store(queue_.size(), std::memory_order_relaxed);
  return true;
}

std::vector<ServeRequest> EngineReplica::PopOwn(size_t max) {
  std::vector<ServeRequest> taken;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t take = std::min(queue_.size(), max);
  taken.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    taken.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  depth_.store(queue_.size(), std::memory_order_relaxed);
  return taken;
}

std::vector<ServeRequest> EngineReplica::DrainQueue() {
  std::vector<ServeRequest> taken;
  std::lock_guard<std::mutex> lock(mu_);
  taken.reserve(queue_.size());
  while (!queue_.empty()) {
    taken.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  depth_.store(0, std::memory_order_relaxed);
  return taken;
}

std::vector<ServeRequest> EngineReplica::Steal() {
  if (siblings_ == nullptr) return {};
  EngineReplica* victim = nullptr;
  size_t longest = 0;
  for (const auto& sibling : *siblings_) {
    if (sibling.get() == this) continue;
    // An unhealthy sibling's backlog belongs to the supervisor: it will be
    // drained and re-dispatched (or quarantined) as part of recovery, and
    // stealing from it would race that confiscation.
    if (sibling->health() != ReplicaHealth::kHealthy) continue;
    const size_t d = sibling->depth();
    if (d > longest) {
      longest = d;
      victim = sibling.get();
    }
  }
  if (victim == nullptr) return {};
  // Take the FRONT half: the oldest requests are the ones most at risk of
  // blowing their deadlines behind a loaded replica, and the victim keeps
  // serving its newer tail FIFO.
  std::vector<ServeRequest> stolen;
  std::lock_guard<std::mutex> lock(victim->mu_);
  const size_t available = victim->queue_.size();
  if (available == 0) return {};
  const size_t take = std::min<size_t>(
      (available + 1) / 2, static_cast<size_t>(options_.max_batch));
  stolen.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    stolen.push_back(std::move(victim->queue_.front()));
    victim->queue_.pop_front();
  }
  victim->depth_.store(victim->queue_.size(), std::memory_order_relaxed);
  return stolen;
}

bool EngineReplica::HasStealableBacklog() const {
  if (siblings_ == nullptr) return false;
  for (const auto& sibling : *siblings_) {
    if (sibling.get() == this) continue;
    if (sibling->health() != ReplicaHealth::kHealthy) continue;
    if (sibling->depth() > 0) return true;
  }
  return false;
}

std::chrono::microseconds EngineReplica::parked_for() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  if (inflight_state_ != InflightState::kParked) {
    return std::chrono::microseconds{0};
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - parked_since_);
}

std::vector<ServeRequest> EngineReplica::ConfiscateParkedBatch() {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  if (inflight_state_ != InflightState::kParked) return {};
  inflight_state_ = InflightState::kNone;
  std::vector<ServeRequest> batch = std::move(inflight_batch_);
  inflight_batch_.clear();
  return batch;
}

void EngineReplica::AbandonStall() {
  std::lock_guard<std::mutex> lock(stall_mu_);
  stall_abandoned_ = true;
  stall_cv_.notify_all();
}

void EngineReplica::SimulateStall() {
  std::unique_lock<std::mutex> lock(stall_mu_);
  stall_cv_.wait(lock, [this] { return stall_abandoned_; });
}

void EngineReplica::Restart() {
  DEEPMAP_CHECK(worker_exited());
  Join();
  {
    std::lock_guard<std::mutex> lock(stall_mu_);
    stall_abandoned_ = false;
  }
  worker_exited_.store(false, std::memory_order_release);
  worker_ = std::thread([this] { Loop(); });
}

void EngineReplica::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(dispatch_->mu);
      // The stealing arm of the predicate checks for *stealable* backlog,
      // not just pending > 0: when every queued request sits on unhealthy
      // siblings the backlog belongs to the supervisor, and waking for it
      // would busy-spin every idle worker (and at shutdown, block the join
      // forever).
      dispatch_->work_cv.wait(lock, [this] {
        return dispatch_->stopping || depth() > 0 ||
               (options_.enable_work_stealing && HasStealableBacklog());
      });
      if (dispatch_->stopping && depth() == 0 &&
          (!options_.enable_work_stealing || !HasStealableBacklog())) {
        // Drained (or the backlog lives on sibling queues and stealing is
        // off, in which case its owners flush it).
        worker_exited_.store(true, std::memory_order_release);
        return;
      }
    }
    std::vector<ServeRequest> batch =
        PopOwn(static_cast<size_t>(options_.max_batch));
    bool stolen = false;
    if (batch.empty() && options_.enable_work_stealing) {
      batch = Steal();
      stolen = !batch.empty();
    }
    if (batch.empty()) continue;  // raced a sibling; back to waiting
    {
      std::lock_guard<std::mutex> lock(dispatch_->mu);
      dispatch_->pending -= static_cast<int64_t>(batch.size());
      ++dispatch_->active_batches;
    }
    if (stolen && cluster_metrics_ != nullptr) {
      cluster_metrics_->RecordSteal(static_cast<int64_t>(batch.size()));
    }

    // Park the batch in the in-flight slot before touching the pipeline.
    // From here until the claim below the supervisor may confiscate it —
    // that transition, not any flag, decides who answers the promises.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_state_ = InflightState::kParked;
      inflight_batch_ = std::move(batch);
      parked_since_ = std::chrono::steady_clock::now();
    }

    // Injected failures, evaluated while the batch is recoverable. A hang
    // parks the worker on stall_cv_ until the supervisor (or shutdown)
    // abandons it; a crash makes the worker thread exit outright. Either
    // way the batch stays in the slot for the supervisor to confiscate.
    bool stalled = false;
    if (DEEPMAP_FAILPOINT_TRIGGERED("serve.replica.hang")) {
      stalled = true;
      SimulateStall();
    }
    if (DEEPMAP_FAILPOINT_TRIGGERED("serve.replica.crash")) {
      worker_exited_.store(true, std::memory_order_release);
      return;
    }

    // Claim the batch back: kParked -> kExecuting. Losing the race means
    // the supervisor confiscated it (and repaired the accounting); the
    // requests are no longer ours.
    bool claimed = false;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      if (inflight_state_ == InflightState::kParked) {
        inflight_state_ = InflightState::kExecuting;
        batch = std::move(inflight_batch_);
        inflight_batch_.clear();
        claimed = true;
      }
    }
    if (claimed) {
      ProcessBatch(std::move(batch));
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_state_ = InflightState::kNone;
      }
      heartbeat_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(dispatch_->mu);
        --dispatch_->active_batches;
        if (dispatch_->pending == 0 && dispatch_->active_batches == 0 &&
            dispatch_->detached == 0) {
          dispatch_->drain_cv.notify_all();
        }
      }
    }
    if (!claimed || stalled) {
      // Lost the batch to confiscation, or survived an abandoned stall
      // (whose batch we just finished): either way the supervisor has
      // declared this worker failed and is waiting on worker_exited() to
      // restart it. Exit so that restart can proceed.
      worker_exited_.store(true, std::memory_order_release);
      return;
    }
  }
}

void EngineReplica::ProcessBatch(std::vector<ServeRequest>&& batch) {
  obs::Tracer::Span span(obs::Tracer::Global(), span_name_.c_str(), "serve");
  // Sync point, not a failure: tests park a replica here (batch popped, not
  // yet executed) to pin stealing and continuous-batching deterministically.
  (void)DEEPMAP_FAILPOINT_TRIGGERED("serve.cluster.batch");

  BatchPipeline::State state;
  pipeline_.Begin(&state, std::move(batch), depth());
  pipeline_.Preprocess(&state);

  if (options_.continuous_batching &&
      state.batch.size() < static_cast<size_t>(options_.max_batch)) {
    // Continuous batching: requests that arrived while this batch was
    // preprocessing join it now instead of waiting for the next dispatch,
    // so they share the already-scheduled forward pass.
    std::vector<ServeRequest> admitted = PopOwn(
        static_cast<size_t>(options_.max_batch) - state.batch.size());
    if (!admitted.empty()) {
      {
        std::lock_guard<std::mutex> lock(dispatch_->mu);
        dispatch_->pending -= static_cast<int64_t>(admitted.size());
      }
      if (cluster_metrics_ != nullptr) {
        cluster_metrics_->RecordContinuousAdmit(
            static_cast<int64_t>(admitted.size()));
      }
      pipeline_.Admit(&state, std::move(admitted));
      pipeline_.Preprocess(&state);
    }
  }

  pipeline_.Forward(&state);
  pipeline_.Complete(&state);
  if (cluster_metrics_ != nullptr) {
    cluster_metrics_->RecordReplicaBatch(
        index_, static_cast<int64_t>(state.batch.size()));
  }
}

}  // namespace deepmap::serve
