#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace deepmap {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    if (pos > start) out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatAccuracy(double mean, double stddev) {
  return FormatDouble(mean, 2) + "+-" + FormatDouble(stddev, 2);
}

}  // namespace deepmap
