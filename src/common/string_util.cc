#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace deepmap {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    if (pos > start) out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

namespace {

template <typename Int>
bool ParseFullIntImpl(std::string_view token, Int* out) {
  // Trim without allocating: from_chars accepts no leading whitespace and
  // reports the first unconsumed character, which is exactly the strictness
  // the TU parsers need.
  size_t begin = 0;
  size_t end = token.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(token[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(token[end - 1]))) {
    --end;
  }
  if (begin == end) return false;
  const char* first = token.data() + begin;
  const char* last = token.data() + end;
  if (*first == '+') ++first;  // from_chars rejects an explicit plus
  Int value = 0;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return false;
  *out = value;
  return true;
}

}  // namespace

bool ParseFullInt(std::string_view token, int* out) {
  return ParseFullIntImpl(token, out);
}

bool ParseFullInt64(std::string_view token, int64_t* out) {
  return ParseFullIntImpl(token, out);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatAccuracy(double mean, double stddev) {
  return FormatDouble(mean, 2) + "+-" + FormatDouble(stddev, 2);
}

}  // namespace deepmap
