// Deterministic fault injection: named fail points compiled into fallible
// call sites.
//
// A fail point is a named hook (e.g. "serve.preprocess") evaluated on a hot
// path. When nothing is activated the evaluation is one relaxed atomic load
// — no lock, no map lookup, no string construction — so instrumented sites
// are free in production builds. Activating a point (programmatically or via
// the DEEPMAP_FAILPOINTS environment variable) attaches a trigger rule:
//
//   always        fire on every evaluation
//   once          fire on the first evaluation only
//   every:N       fire on every N-th evaluation (N, 2N, 3N, ...)
//   p:P[:SEED]    fire with probability P per evaluation, from a seeded
//                 per-point RNG stream (deterministic across runs)
//
// A spec may also carry an on_trigger callback, run outside the registry
// lock each time the point fires; tests use this as a deterministic sync
// point (e.g. park the batcher dispatcher on a gate instead of sleeping).
//
// Call sites consult points through the macros below and surface injected
// failures as Status::Unavailable ("injected fault at <name>"), so every
// induced error is typed and attributable to its injection site.
//
// Env activation: DEEPMAP_FAILPOINTS="name=spec;name=spec", parsed once on
// first registry access. The catalog of instrumented sites lives in
// docs/robustness.md.
#ifndef DEEPMAP_COMMON_FAILPOINT_H_
#define DEEPMAP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

namespace deepmap {

/// Trigger rule of one activated fail point.
struct FailPointSpec {
  enum class Mode { kAlways, kOnce, kEveryNth, kProbability };

  Mode mode = Mode::kAlways;
  double probability = 0.0;  // kProbability: chance per evaluation, [0, 1]
  uint64_t n = 1;            // kEveryNth: fires on evaluations N, 2N, ...
  uint64_t seed = 42;        // kProbability: per-point RNG stream seed
  /// Optional hook run (outside the registry lock) every time the point
  /// fires. May block; used by tests as a deterministic sync point.
  std::function<void()> on_trigger;

  static FailPointSpec Always() { return {}; }
  static FailPointSpec Once() {
    FailPointSpec s;
    s.mode = Mode::kOnce;
    return s;
  }
  static FailPointSpec EveryNth(uint64_t n) {
    FailPointSpec s;
    s.mode = Mode::kEveryNth;
    s.n = n;
    return s;
  }
  static FailPointSpec Probability(double p, uint64_t seed = 42) {
    FailPointSpec s;
    s.mode = Mode::kProbability;
    s.probability = p;
    s.seed = seed;
    return s;
  }
};

/// Process-wide name -> trigger rule map. All methods are thread-safe.
class FailPointRegistry {
 public:
  /// The singleton. First access parses DEEPMAP_FAILPOINTS (a parse error is
  /// logged and ignored so a typo cannot take down a serving binary).
  static FailPointRegistry& Instance();

  /// Activates (or replaces) `name` with `spec`, resetting its counters.
  void Enable(const std::string& name, FailPointSpec spec);

  /// Parses a spec string — "always", "once", "every:N", "p:P[:SEED]", or
  /// "off" — and activates it. InvalidArgument on malformed input.
  Status EnableFromString(const std::string& name, const std::string& spec);

  void Disable(const std::string& name);
  void DisableAll();

  /// Parses DEEPMAP_FAILPOINTS ("name=spec;name=spec"). No-op when unset.
  Status LoadFromEnv();

  /// True when `name` has an active spec.
  bool IsEnabled(const std::string& name) const;
  std::vector<std::string> ActiveNames() const;

  /// Times the named point was evaluated / fired since activation.
  int64_t evaluations(const std::string& name) const;
  int64_t triggers(const std::string& name) const;

  /// Evaluates the point: counts the evaluation, applies the trigger rule,
  /// and runs on_trigger (lock released) when it fires. Prefer the
  /// DEEPMAP_FAILPOINT_TRIGGERED macro, which short-circuits the common
  /// nothing-active case.
  bool ShouldTrigger(const char* name);

  /// True when any point is active anywhere in the process; one relaxed
  /// load, the whole cost of a disabled fail point.
  static bool AnyActive() {
    return active_count_.load(std::memory_order_relaxed) != 0;
  }

 private:
  struct Point {
    FailPointSpec spec;
    int64_t evaluations = 0;
    int64_t triggers = 0;
    bool once_spent = false;
    std::mt19937_64 rng;
  };

  FailPointRegistry() = default;

  static std::atomic<int> active_count_;

  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
};

/// The Status an instrumented site returns when its point fires: Unavailable
/// with the site name, so injected errors are typed and attributable.
Status FailPointError(const char* name);

/// True when the named fail point fires on this evaluation. Zero-cost (one
/// relaxed atomic load) while no point is active in the process.
#define DEEPMAP_FAILPOINT_TRIGGERED(name)       \
  (::deepmap::FailPointRegistry::AnyActive() && \
   ::deepmap::FailPointRegistry::Instance().ShouldTrigger(name))

/// Returns FailPointError(name) from the enclosing function (which must
/// return Status or StatusOr<T>) when the point fires.
#define DEEPMAP_INJECT_FAULT(name)               \
  do {                                           \
    if (DEEPMAP_FAILPOINT_TRIGGERED(name)) {     \
      return ::deepmap::FailPointError(name);    \
    }                                            \
  } while (0)

}  // namespace deepmap

#endif  // DEEPMAP_COMMON_FAILPOINT_H_
