// Lightweight CHECK macros for programming-error assertions.
//
// These are enabled in all build types (unlike assert): a failed check prints
// the failing condition with file/line context and aborts. Library code uses
// them for contract violations only; fallible operations (I/O, parsing)
// return Status instead.
#ifndef DEEPMAP_COMMON_CHECK_H_
#define DEEPMAP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace deepmap {
namespace internal_check {

[[noreturn]] inline void CheckFail(const char* file, int line, const char* cond,
                                   const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, cond,
               message.c_str());
  std::abort();
}

template <typename A, typename B>
std::string FormatBinary(const A& a, const B& b) {
  std::ostringstream os;
  os << "(" << a << " vs. " << b << ")";
  return os.str();
}

}  // namespace internal_check
}  // namespace deepmap

#define DEEPMAP_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::deepmap::internal_check::CheckFail(__FILE__, __LINE__, #cond, ""); \
    }                                                                     \
  } while (0)

#define DEEPMAP_CHECK_OP(op, a, b)                                          \
  do {                                                                      \
    if (!((a)op(b))) {                                                      \
      ::deepmap::internal_check::CheckFail(                                 \
          __FILE__, __LINE__, #a " " #op " " #b,                            \
          ::deepmap::internal_check::FormatBinary((a), (b)));               \
    }                                                                       \
  } while (0)

#define DEEPMAP_CHECK_EQ(a, b) DEEPMAP_CHECK_OP(==, a, b)
#define DEEPMAP_CHECK_NE(a, b) DEEPMAP_CHECK_OP(!=, a, b)
#define DEEPMAP_CHECK_LT(a, b) DEEPMAP_CHECK_OP(<, a, b)
#define DEEPMAP_CHECK_LE(a, b) DEEPMAP_CHECK_OP(<=, a, b)
#define DEEPMAP_CHECK_GT(a, b) DEEPMAP_CHECK_OP(>, a, b)
#define DEEPMAP_CHECK_GE(a, b) DEEPMAP_CHECK_OP(>=, a, b)

#endif  // DEEPMAP_COMMON_CHECK_H_
