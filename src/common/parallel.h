// Minimal thread pool and parallel-for.
//
// Used for embarrassingly parallel work: Gram-matrix rows, per-fold cross
// validation, per-graph feature extraction. On single-core machines the pool
// degrades gracefully to sequential execution.
#ifndef DEEPMAP_COMMON_PARALLEL_H_
#define DEEPMAP_COMMON_PARALLEL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace deepmap {

/// Thread count used whenever a caller passes 0 ("auto"): the value of the
/// DEEPMAP_NUM_THREADS environment variable when it parses as a positive
/// integer, otherwise std::thread::hardware_concurrency (at least 1). Read
/// on every call so tests and benches can re-pin mid-process.
size_t DefaultNumThreads();

/// Fixed-size worker pool executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means DefaultNumThreads().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [0, n). Work is split into contiguous chunks across
/// `num_threads` threads (0 = DefaultNumThreads(); 1 = run inline).
void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 size_t num_threads = 0);

}  // namespace deepmap

#endif  // DEEPMAP_COMMON_PARALLEL_H_
