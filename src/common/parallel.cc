#include "common/parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace deepmap {
namespace {

// Instrument handles resolved once (registry lookups take a mutex; per-task
// updates must stay lock-free).
obs::Counter& PoolTasksTotal() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "deepmap_pool_tasks_total", "tasks executed by ThreadPool workers");
  return counter;
}

obs::Histogram& PoolTaskSeconds() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Default().GetHistogram(
          "deepmap_pool_task_seconds", {},
          "wall time of individual ThreadPool tasks");
  return histogram;
}

obs::Counter& ParallelForChunksTotal() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "deepmap_pool_parallel_for_chunks_total",
      "contiguous index chunks executed by ParallelFor");
  return counter;
}

obs::Histogram& ParallelForChunkSeconds() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Default().GetHistogram(
          "deepmap_pool_parallel_for_chunk_seconds", {},
          "wall time of ParallelFor chunks (straggler detection)");
  return histogram;
}

}  // namespace

size_t DefaultNumThreads() {
  if (const char* env = std::getenv("DEEPMAP_NUM_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = DefaultNumThreads();
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Latency fault: stalls this task (e.g. a slow preprocessing shard) to
    // shake out ordering assumptions; never changes results, only timing.
    if (DEEPMAP_FAILPOINT_TRIGGERED("pool.task.delay")) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    {
      PoolTasksTotal().Increment();
      obs::ScopedStageTimer timer(&PoolTaskSeconds(), "pool.task", "pool");
      task();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 size_t num_threads) {
  if (n == 0) return;
  if (num_threads == 0) {
    num_threads = DefaultNumThreads();
  }
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    ParallelForChunksTotal().Increment();
    obs::ScopedStageTimer timer(&ParallelForChunkSeconds(),
                                "pool.parallel_for", "pool");
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  size_t chunk = (n + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&body, begin, end] {
      ParallelForChunksTotal().Increment();
      obs::ScopedStageTimer timer(&ParallelForChunkSeconds(),
                                  "pool.parallel_for", "pool");
      for (size_t i = begin; i < end; ++i) body(i);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace deepmap
