#include "common/failpoint.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace deepmap {

std::atomic<int> FailPointRegistry::active_count_{0};

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* instance = [] {
    auto* registry = new FailPointRegistry();
    if (Status s = registry->LoadFromEnv(); !s.ok()) {
      DEEPMAP_LOG(Warning) << "ignoring DEEPMAP_FAILPOINTS: " << s.ToString();
    }
    return registry;
  }();
  return *instance;
}

namespace {
// The trigger macro short-circuits on AnyActive() without ever touching the
// registry, so env-armed fail points must be loaded eagerly — before the
// first evaluation — not lazily on first Instance() access.
const bool g_env_loaded = [] {
  if (std::getenv("DEEPMAP_FAILPOINTS") != nullptr) {
    FailPointRegistry::Instance();
  }
  return true;
}();
}  // namespace

void FailPointRegistry::Enable(const std::string& name, FailPointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.try_emplace(name);
  if (inserted) active_count_.fetch_add(1, std::memory_order_relaxed);
  Point& point = it->second;
  point.spec = std::move(spec);
  point.evaluations = 0;
  point.triggers = 0;
  point.once_spent = false;
  point.rng.seed(point.spec.seed);
}

Status FailPointRegistry::EnableFromString(const std::string& name,
                                           const std::string& spec) {
  if (name.empty()) {
    return Status::InvalidArgument("fail point name must not be empty");
  }
  const std::string trimmed = Trim(spec);
  if (trimmed == "off") {
    Disable(name);
    return Status::Ok();
  }
  if (trimmed == "always") {
    Enable(name, FailPointSpec::Always());
    return Status::Ok();
  }
  if (trimmed == "once") {
    Enable(name, FailPointSpec::Once());
    return Status::Ok();
  }
  const std::vector<std::string> parts = Split(trimmed, ':');
  if (parts.size() >= 2 && parts[0] == "every") {
    char* end = nullptr;
    const long n = std::strtol(parts[1].c_str(), &end, 10);
    if (end == parts[1].c_str() || *end != '\0' || n <= 0 ||
        parts.size() > 2) {
      return Status::InvalidArgument("bad every-Nth spec '" + spec +
                                     "' for fail point '" + name +
                                     "' (want every:N with N > 0)");
    }
    Enable(name, FailPointSpec::EveryNth(static_cast<uint64_t>(n)));
    return Status::Ok();
  }
  if (parts.size() >= 2 && parts[0] == "p") {
    char* end = nullptr;
    const double p = std::strtod(parts[1].c_str(), &end);
    if (end == parts[1].c_str() || *end != '\0' || p < 0.0 || p > 1.0 ||
        parts.size() > 3) {
      return Status::InvalidArgument("bad probability spec '" + spec +
                                     "' for fail point '" + name +
                                     "' (want p:P[:SEED] with P in [0,1])");
    }
    uint64_t seed = 42;
    if (parts.size() == 3) {
      const long long parsed = std::strtoll(parts[2].c_str(), &end, 10);
      if (end == parts[2].c_str() || *end != '\0' || parsed < 0) {
        return Status::InvalidArgument("bad seed in fail point spec '" +
                                       spec + "' for '" + name + "'");
      }
      seed = static_cast<uint64_t>(parsed);
    }
    Enable(name, FailPointSpec::Probability(p, seed));
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "unknown fail point spec '" + spec + "' for '" + name +
      "' (want off|always|once|every:N|p:P[:SEED])");
}

void FailPointRegistry::Disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(name) > 0) {
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  active_count_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

Status FailPointRegistry::LoadFromEnv() {
  const char* env = std::getenv("DEEPMAP_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::Ok();
  for (const std::string& entry : Split(env, ';')) {
    const std::string item = Trim(entry);
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad DEEPMAP_FAILPOINTS entry '" +
                                     item + "' (want name=spec)");
    }
    if (Status s = EnableFromString(Trim(item.substr(0, eq)),
                                    Trim(item.substr(eq + 1)));
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

bool FailPointRegistry::IsEnabled(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.count(name) > 0;
}

std::vector<std::string> FailPointRegistry::ActiveNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

int64_t FailPointRegistry::evaluations(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.evaluations;
}

int64_t FailPointRegistry::triggers(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.triggers;
}

bool FailPointRegistry::ShouldTrigger(const char* name) {
  std::function<void()> hook;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return false;
    Point& point = it->second;
    ++point.evaluations;
    switch (point.spec.mode) {
      case FailPointSpec::Mode::kAlways:
        fired = true;
        break;
      case FailPointSpec::Mode::kOnce:
        fired = !point.once_spent;
        point.once_spent = true;
        break;
      case FailPointSpec::Mode::kEveryNth:
        fired = (static_cast<uint64_t>(point.evaluations) %
                 point.spec.n) == 0;
        break;
      case FailPointSpec::Mode::kProbability: {
        std::bernoulli_distribution trial(point.spec.probability);
        fired = trial(point.rng);
        break;
      }
    }
    if (fired) {
      ++point.triggers;
      hook = point.spec.on_trigger;  // run below, outside the lock
    }
  }
  if (fired) {
    // Fired fault injections show up on scrapes next to the serve counters
    // they perturb; per-point counts keep chaos runs attributable. Both
    // registrations are cold-path (a point only fires when armed).
    obs::MetricsRegistry::Default()
        .GetCounter("deepmap_failpoint_triggers_total",
                    "fail-point firings, all points")
        .Increment();
    std::string point_name(name);
    for (char& c : point_name) {
      if (c == '.' || c == '-') c = '_';
    }
    obs::MetricsRegistry::Default()
        .GetCounter("deepmap_failpoint_" + point_name + "_triggers_total",
                    "fail-point firings at this point")
        .Increment();
  }
  if (hook) hook();
  return fired;
}

Status FailPointError(const char* name) {
  return Status::Unavailable(std::string("injected fault at ") + name);
}

}  // namespace deepmap
