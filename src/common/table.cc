#include "common/table.h"

#include <algorithm>
#include <fstream>

#include "common/check.h"

namespace deepmap {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DEEPMAP_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  DEEPMAP_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      bool quote = row[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[c];
      if (quote) os << '"';
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

bool Table::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  PrintCsv(out);
  return static_cast<bool>(out);
}

}  // namespace deepmap
