// Wall-clock stopwatch for runtime experiments (Table 5).
#ifndef DEEPMAP_COMMON_STOPWATCH_H_
#define DEEPMAP_COMMON_STOPWATCH_H_

#include <chrono>

namespace deepmap {

/// Monotonic wall-clock timer. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deepmap

#endif  // DEEPMAP_COMMON_STOPWATCH_H_
