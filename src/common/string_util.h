// Small string helpers shared across the library.
#ifndef DEEPMAP_COMMON_STRING_UTIL_H_
#define DEEPMAP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace deepmap {

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing whitespace.
std::string Trim(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Formats a double with fixed precision (default 2 digits).
std::string FormatDouble(double value, int precision = 2);

/// "mean±std" accuracy formatting used in result tables (percent values).
std::string FormatAccuracy(double mean, double stddev);

}  // namespace deepmap

#endif  // DEEPMAP_COMMON_STRING_UTIL_H_
