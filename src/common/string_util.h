// Small string helpers shared across the library.
#ifndef DEEPMAP_COMMON_STRING_UTIL_H_
#define DEEPMAP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace deepmap {

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing whitespace.
std::string Trim(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Strict full-token base-10 integer parse: after trimming surrounding
/// whitespace, the ENTIRE token must be one optionally-signed integer that
/// fits in `int`. Returns false for empty input, trailing garbage
/// ("12abc"), embedded separators ("1 2"), and overflow ("2147483648") —
/// the cases std::stoi silently accepts or only partially rejects.
bool ParseFullInt(std::string_view token, int* out);

/// Same contract for int64_t values.
bool ParseFullInt64(std::string_view token, int64_t* out);

/// Formats a double with fixed precision (default 2 digits).
std::string FormatDouble(double value, int precision = 2);

/// "mean±std" accuracy formatting used in result tables (percent values).
std::string FormatAccuracy(double mean, double stddev);

}  // namespace deepmap

#endif  // DEEPMAP_COMMON_STRING_UTIL_H_
