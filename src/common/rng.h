// Seeded random number generation.
//
// All stochastic components in the library (graphlet sampling, dropout,
// weight init, dataset generators, fold shuffling) take an explicit Rng so
// every experiment is reproducible bit-for-bit.
#ifndef DEEPMAP_COMMON_RNG_H_
#define DEEPMAP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace deepmap {

/// Deterministic pseudo-random generator (mersenne twister) with convenience
/// sampling helpers. Copyable; copies continue independent streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform size_t in [0, n). Requires n > 0.
  size_t Index(size_t n);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal sample.
  double Normal();

  /// Normal with given mean and stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derive a new generator with an independent stream.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace deepmap

#endif  // DEEPMAP_COMMON_RNG_H_
