// Status / StatusOr: error handling for fallible operations.
//
// Library code does not throw; functions that can fail (file I/O, parsing,
// user-facing configuration) return Status or StatusOr<T>. Contract
// violations use DEEPMAP_CHECK instead.
#ifndef DEEPMAP_COMMON_STATUS_H_
#define DEEPMAP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace deepmap {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,    // a request's deadline passed before completion
  kResourceExhausted,   // admission control shed the request under overload
  kUnavailable,         // transient infrastructure failure; safe to retry
};

/// Result of a fallible operation: an OK marker or an error code + message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// True for transient failures a caller may safely retry (overload
/// shedding, queue rejection, infrastructure unavailability). Client errors
/// (InvalidArgument), deadline expiry, and contract violations are not
/// retryable: repeating them cannot succeed.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

/// Either a value of type T or an error Status. Access to value() on an
/// error StatusOr is a checked failure.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DEEPMAP_CHECK(ok());
    return *value_;
  }
  T& value() & {
    DEEPMAP_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    DEEPMAP_CHECK(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace deepmap

#endif  // DEEPMAP_COMMON_STATUS_H_
