// Aligned plain-text table printer used by the benchmark harnesses to emit
// the same rows the paper's tables report, plus CSV export.
#ifndef DEEPMAP_COMMON_TABLE_H_
#define DEEPMAP_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace deepmap {

/// Column-aligned text table. Rows are appended as vectors of cells; Print
/// pads every column to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  /// Writes the aligned table (with a separator under the header).
  void Print(std::ostream& os) const;

  /// Writes comma-separated values (header + rows). Cells containing commas
  /// are quoted.
  void PrintCsv(std::ostream& os) const;

  /// Writes the CSV to a file; returns false on I/O failure.
  bool WriteCsvFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepmap

#endif  // DEEPMAP_COMMON_TABLE_H_
