#include "common/rng.h"

#include <algorithm>
#include <numeric>

namespace deepmap {

int Rng::UniformInt(int lo, int hi) {
  DEEPMAP_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::Index(size_t n) {
  DEEPMAP_CHECK_GT(n, 0u);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Uniform() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal() {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DEEPMAP_CHECK_LE(k, n);
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  // Partial Fisher-Yates: shuffle only the first k slots.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() {
  uint64_t seed = engine_();
  return Rng(seed);
}

}  // namespace deepmap
