// Minimal leveled logging to stderr.
#ifndef DEEPMAP_COMMON_LOGGING_H_
#define DEEPMAP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace deepmap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {

/// Stream-style log line emitter; writes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace deepmap

#define DEEPMAP_LOG(level)                                                  \
  ::deepmap::internal_log::LogMessage(::deepmap::LogLevel::k##level,        \
                                      __FILE__, __LINE__)                   \
      .stream()

#endif  // DEEPMAP_COMMON_LOGGING_H_
