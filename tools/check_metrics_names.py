#!/usr/bin/env python3
"""Lint metric names used at Get{Counter,Gauge,Histogram} call sites.

The registry already CHECK-fails on a bad name at runtime, but only on code
paths a test actually executes. This lint makes the naming convention a
build-time property: it scans every C++ source under src/, tools/, bench/,
and tests/ for string literals passed to GetCounter / GetGauge / GetHistogram
and validates them against the scheme documented in docs/observability.md:

    deepmap_<subsystem>_<name>_total    counters
    deepmap_<subsystem>_<name>          gauges
    deepmap_<subsystem>_<name>_seconds  histograms

with every token matching [a-z][a-z0-9]* (first char of later tokens may be a
digit) and at least three tokens overall. Mirrors ValidateMetricName in
src/obs/metrics.cc — keep the two in sync.

Usage: check_metrics_names.py [repo_root]
Exit status: 0 clean, 1 violations found.
"""

import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "tools", "bench", "tests")
SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}

# GetCounter("literal"...  — allow the call to be split across lines between
# the paren and the string. Names built at runtime (no literal first arg) are
# skipped here; the registry still validates them when the code runs. Group 3
# captures what follows the literal: a `+` means the literal is only a prefix
# of a runtime-composed name.
CALL_RE = re.compile(
    r'\bGet(Counter|Gauge|Histogram)\s*\(\s*"([^"]*)"\s*([+,)])', re.MULTILINE)

TOKEN_RE = re.compile(r"[a-z0-9]+")

# constexpr char kFoo[] = "deepmap_...";  — call sites that pass a named
# constant (model_registry.cc does this for the backend counters) are
# invisible to CALL_RE, so metric-name constants are scanned separately. The
# kind is inferred from the reserved suffix.
NAME_CONST_RE = re.compile(
    r'\bconstexpr\s+char\s+\w+\s*\[\]\s*=\s*"(deepmap_[^"]*)"', re.MULTILINE)

KIND_SUFFIX = {
    "Counter": "_total",
    "Histogram": "_seconds",
}

# Families that must exist somewhere in the tree: dashboards and the serving
# runbook reference these by name, so silently renaming (or dropping) one is
# a break even though every remaining literal still lints clean. Maps name ->
# the Get* kind it must be registered with.
REQUIRED_FAMILIES = {
    "deepmap_serve_backend_loads_total": "Counter",
    "deepmap_serve_backend_fallback_total": "Counter",
    # Supervision / self-healing (HealthMetrics; docs/robustness.md).
    "deepmap_serve_health_hangs_total": "Counter",
    "deepmap_serve_health_crashes_total": "Counter",
    "deepmap_serve_health_restarts_total": "Counter",
    "deepmap_serve_health_redispatched_total": "Counter",
    "deepmap_serve_health_quarantined_total": "Counter",
    "deepmap_serve_health_unhealthy_replicas": "Gauge",
    # Versioned hot reload (ModelRegistry + the cluster swap counter).
    "deepmap_serve_reload_attempts_total": "Counter",
    "deepmap_serve_reload_success_total": "Counter",
    "deepmap_serve_reload_rollback_total": "Counter",
    "deepmap_serve_reload_breaker_open_total": "Counter",
    "deepmap_serve_reload_swaps_total": "Counter",
    # Dynamic-graph serving (ClassifyDelta; docs/serving.md).
    "deepmap_serve_dynamic_updates_total": "Counter",
    "deepmap_serve_dynamic_incremental_hits_total": "Counter",
    "deepmap_serve_dynamic_full_recomputes_total": "Counter",
}


def validate_prefix(name: str) -> str | None:
    """Checks a literal that is concatenated with runtime parts — only the
    prefix structure can be validated statically; the registry CHECKs the
    full name at runtime."""
    tokens = name.split("_")
    if tokens and tokens[-1] == "":
        tokens = tokens[:-1]  # "deepmap_serve_" + x: trailing _ joins parts
    if not tokens or tokens[0] != "deepmap":
        return "must start with deepmap_"
    for token in tokens:
        if not TOKEN_RE.fullmatch(token):
            return f"token {token!r} must match [a-z0-9]+"
    return None


def validate(kind: str, name: str) -> str | None:
    """Returns an error message, or None when the name is valid."""
    tokens = name.split("_")
    if len(tokens) < 3:
        return "needs at least deepmap_<subsystem>_<name>"
    for token in tokens:
        if not token:
            return "empty token (double or trailing underscore)"
        if not TOKEN_RE.fullmatch(token):
            return f"token {token!r} must match [a-z0-9]+"
    if tokens[0] != "deepmap":
        return "must start with deepmap_"
    suffix = KIND_SUFFIX.get(kind)
    if suffix is not None:
        if not name.endswith(suffix):
            return f"{kind.lower()} must end with {suffix}"
    else:  # gauge: neither reserved suffix
        if name.endswith("_total") or name.endswith("_seconds"):
            return "gauge must not use a _total/_seconds suffix"
    return None


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    violations = []
    scanned = 0
    checked = 0
    seen = {}  # name -> kind, for the required-families check
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            scanned += 1
            text = path.read_text(encoding="utf-8", errors="replace")
            for match in CALL_RE.finditer(text):
                kind, name, tail = match.group(1), match.group(2), match.group(3)
                # Deliberately invalid names inside death tests assert that
                # the registry rejects them — the lint must not flag those.
                if "EXPECT_DEATH" in text[max(0, match.start() - 160):match.start()]:
                    continue
                checked += 1
                if tail != "+":
                    seen.setdefault(name, kind)
                error = (validate_prefix(name) if tail == "+"
                         else validate(kind, name))
                if error:
                    line = text.count("\n", 0, match.start()) + 1
                    violations.append(
                        f"{path.relative_to(root)}:{line}: "
                        f"Get{kind}(\"{name}\"): {error}")
            for match in NAME_CONST_RE.finditer(text):
                name = match.group(1)
                kind = ("Counter" if name.endswith("_total") else
                        "Histogram" if name.endswith("_seconds") else "Gauge")
                checked += 1
                seen.setdefault(name, kind)
                error = validate(kind, name)
                if error:
                    line = text.count("\n", 0, match.start()) + 1
                    violations.append(
                        f"{path.relative_to(root)}:{line}: "
                        f"constant \"{name}\": {error}")
    for name, kind in sorted(REQUIRED_FAMILIES.items()):
        if name not in seen:
            violations.append(
                f"required metric family {name!r} is not registered anywhere "
                f"(expected a Get{kind}(\"{name}\") call site)")
        elif seen[name] != kind:
            violations.append(
                f"required metric family {name!r} is registered as "
                f"Get{seen[name]}, expected Get{kind}")
    for violation in violations:
        print(violation)
    print(f"check_metrics_names: {checked} metric names across "
          f"{scanned} files, {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
