// deepmap_cli — command-line front end for the DEEPMAP library.
//
// Subcommands:
//   stats       print Table-1 style statistics of a dataset
//   evaluate    k-fold cross-validate a method on a dataset
//   generate    write a synthetic benchmark dataset in TU format
//   serve-bench train a model, serve a request stream through the batched
//               inference engine, and print throughput + latency metrics
//
// Datasets come either from TU-format files on disk (--data_dir=DIR
// --dataset=NAME) or from the built-in synthetic generators
// (--synthetic=NAME [--scale=F]). Methods: deepmap-gk, deepmap-sp,
// deepmap-wl, deepmap-treepp, gk, sp, wl, treepp, wl-oa, rw, dgk, retgk,
// gntk, dgcnn, gin, dcnn, patchysan, gcn, gat.
//
// Examples:
//   deepmap_cli stats --synthetic=KKI
//   deepmap_cli evaluate --method=deepmap-wl --synthetic=PTC_MR --folds=3
//   deepmap_cli evaluate --method=wl --data_dir=/data/TU --dataset=MUTAG
//   deepmap_cli generate --synthetic=ENZYMES --out_dir=/tmp/enzymes
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/gat.h"
#include "baselines/gcn.h"
#include "baselines/kernel_svm.h"
#include "common/stopwatch.h"
#include "eval/experiment.h"
#include "graph/statistics.h"
#include "graph/tu_format.h"
#include "kernels/random_walk.h"
#include "kernels/wl_oa.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cluster.h"
#include "serve/engine.h"

namespace {

using namespace deepmap;

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoi(it->second);
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: deepmap_cli <stats|evaluate|generate|serve-bench> [flags]\n"
      "  common:      --synthetic=NAME [--scale=F] | --data_dir=DIR --dataset=NAME\n"
      "  evaluate:    --method=M [--folds=N] [--epochs=N] [--seed=N] [--r=N]\n"
      "  generate:    --synthetic=NAME --out_dir=DIR [--scale=F]\n"
      "  serve-bench: [--requests=N] [--batch=N] [--epochs=N] [--cache=N]\n"
      "               [--wait_us=N] [--replicas=N] [--backend=fp32|int8]\n"
      "               [--trace-out=FILE] [--metrics-out=FILE]\n");
  return 2;
}

StatusOr<graph::GraphDataset> LoadDataset(const CliArgs& args) {
  if (args.Has("synthetic")) {
    datasets::DatasetOptions options;
    options.scale = args.GetDouble("scale", 0.12);
    options.min_graphs = args.GetInt("min_graphs", 80);
    options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
    return datasets::MakeDataset(args.Get("synthetic"), options);
  }
  if (args.Has("data_dir") && args.Has("dataset")) {
    auto ds = graph::ReadTuDataset(args.Get("data_dir"), args.Get("dataset"));
    if (ds.ok() && !ds.value().has_vertex_labels()) {
      ds.value().UseDegreesAsLabels();
    }
    return ds;
  }
  return Status::InvalidArgument(
      "need --synthetic=NAME or --data_dir=DIR --dataset=NAME");
}

int RunStats(const CliArgs& args) {
  auto ds = LoadDataset(args);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto stats = ds.value().Stats();
  std::printf("dataset:        %s\n", ds.value().name().c_str());
  std::printf("graphs:         %d\n", stats.size);
  std::printf("classes:        %d\n", stats.num_classes);
  std::printf("avg vertices:   %.2f\n", stats.avg_vertices);
  std::printf("avg edges:      %.2f\n", stats.avg_edges);
  std::printf("vertex labels:  %d\n", stats.num_vertex_labels);
  std::printf("max vertices:   %d (the CNN sequence length w)\n",
              ds.value().MaxVertices());
  graph::ExtendedStats ext = graph::ComputeExtendedStats(ds.value());
  std::printf("density:        %.4f\n", ext.density);
  std::printf("clustering:     %.4f\n", ext.clustering);
  std::printf("assortativity:  %+.4f\n", ext.assortativity);
  std::printf("components:     %.2f\n", ext.components);
  std::printf("diameter:       %.2f\n", ext.diameter);
  return 0;
}

int RunEvaluate(const CliArgs& args) {
  auto ds = LoadDataset(args);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  const std::string method = args.Get("method", "deepmap-wl");
  eval::BenchOptions options;
  options.folds = args.GetInt("folds", 3);
  options.epochs = args.GetInt("epochs", 24);
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  auto kind_of = [](const std::string& name) {
    if (name == "gk") return kernels::FeatureMapKind::kGraphlet;
    if (name == "sp") return kernels::FeatureMapKind::kShortestPath;
    if (name == "treepp") return kernels::FeatureMapKind::kTreePp;
    return kernels::FeatureMapKind::kWlSubtree;
  };

  eval::MethodRun run;
  if (method.rfind("deepmap-", 0) == 0) {
    core::DeepMapConfig config =
        eval::DefaultDeepMapConfig(kind_of(method.substr(8)), options);
    config.receptive_field_size = args.GetInt("r", 5);
    run = eval::RunDeepMap(ds.value(), config, options);
  } else if (method == "gk" || method == "sp" || method == "wl" ||
             method == "treepp") {
    run = eval::RunGraphKernel(ds.value(), kind_of(method), options);
  } else if (method == "wl-oa") {
    auto gram = kernels::WlOptimalAssignmentKernelMatrix(ds.value());
    run.cv = baselines::KernelSvmCrossValidate(gram, ds.value().labels(),
                                               options.folds, options.seed);
  } else if (method == "rw") {
    kernels::RandomWalkConfig config;
    config.order = args.GetInt("order", 1);
    auto gram = kernels::RandomWalkKernelMatrix(ds.value(), config);
    run.cv = baselines::KernelSvmCrossValidate(gram, ds.value().labels(),
                                               options.folds, options.seed);
  } else if (method == "dgk") {
    run = eval::RunDgk(ds.value(), options);
  } else if (method == "retgk") {
    run = eval::RunRetGk(ds.value(), options);
  } else if (method == "gntk") {
    run = eval::RunGntk(ds.value(), options);
  } else if (method == "gcn" || method == "gat") {
    // Extended related-work baselines (paper Sec. 2.2).
    baselines::VertexFeatureProvider provider =
        baselines::OneHotProvider(ds.value());
    nn::TrainConfig train;
    train.epochs = options.epochs;
    train.batch_size = 8;
    run.cv = eval::CrossValidate(
        ds.value().labels(), options.folds, options.seed,
        [&](const eval::FoldSplit& split, int fold) -> double {
          auto evaluate = [&](auto& model, const auto& samples) {
            std::vector<std::decay_t<decltype(samples[0])>> tr, te;
            std::vector<int> trl, tel;
            for (int i : split.train_indices) {
              tr.push_back(samples[i]);
              trl.push_back(ds.value().label(i));
            }
            for (int i : split.test_indices) {
              te.push_back(samples[i]);
              tel.push_back(ds.value().label(i));
            }
            nn::TrainConfig fold_train = train;
            fold_train.seed = options.seed + 900 + fold;
            nn::TrainClassifier(model, tr, trl, fold_train);
            return nn::EvaluateAccuracy(model, te, tel);
          };
          if (method == "gcn") {
            auto samples = baselines::BuildGcnSamples(ds.value(), provider);
            baselines::GcnConfig config;
            config.seed = options.seed + 500 + fold;
            baselines::GcnModel model(provider.dim, ds.value().NumClasses(),
                                      config);
            return evaluate(model, samples);
          }
          auto samples = baselines::BuildGatSamples(ds.value(), provider);
          baselines::GatConfig config;
          config.seed = options.seed + 500 + fold;
          baselines::GatModel model(provider.dim, ds.value().NumClasses(),
                                    config);
          return evaluate(model, samples);
        });
  } else if (method == "dgcnn" || method == "gin" || method == "dcnn" ||
             method == "patchysan") {
    eval::GnnKind kind = eval::GnnKind::kDgcnn;
    if (method == "gin") kind = eval::GnnKind::kGin;
    if (method == "dcnn") kind = eval::GnnKind::kDcnn;
    if (method == "patchysan") kind = eval::GnnKind::kPatchySan;
    run = eval::RunGnn(ds.value(), kind, args.Has("vfm"), options);
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return 2;
  }
  std::printf("%s on %s: %.2f%% +- %.2f%%", method.c_str(),
              ds.value().name().c_str(), run.cv.mean_accuracy, run.cv.stddev);
  if (run.mean_epoch_ms > 0) {
    std::printf("  (%.1f ms/epoch)", run.mean_epoch_ms);
  }
  std::printf("\nfolds:");
  for (double a : run.cv.fold_accuracies) std::printf(" %.2f", a);
  std::printf("\n");
  return 0;
}

int RunServeBench(const CliArgs& args) {
  auto ds = LoadDataset(args);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = ds.value();
  const int requests = args.GetInt("requests", 256);
  const int batch = args.GetInt("batch", 32);
  const int wait_us = args.GetInt("wait_us", 2000);
  const int cache = args.GetInt("cache", 1024);
  const int replicas = args.GetInt("replicas", 1);
  const std::string backend = args.Get("backend", "fp32");
  const std::string trace_out = args.Get("trace-out");
  const std::string metrics_out = args.Get("metrics-out");
  if (requests < 0 || batch <= 0 || wait_us < 0 || cache < 0 ||
      replicas <= 0) {
    std::fprintf(stderr,
                 "serve-bench: --requests/--wait_us/--cache must be >= 0 "
                 "and --batch/--replicas must be > 0\n");
    return 2;
  }

  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 2;
  config.features.max_dense_dim = 64;
  config.train.epochs = args.GetInt("epochs", 6);
  config.train.batch_size = 8;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  core::DeepMapPipeline pipeline(dataset, config);
  core::DeepMapModel model(pipeline.feature_dim(), pipeline.sequence_length(),
                           pipeline.num_classes(), config);
  auto history = nn::TrainClassifier(model, pipeline.inputs(),
                                     dataset.labels(), config.train);
  std::printf("trained DEEPMAP-WL on %s: train accuracy %.1f%%\n",
              dataset.name().c_str(), 100.0 * history.final_accuracy());

  // One shared metrics registry so --metrics-out captures the registry's
  // backend load/fallback counters alongside the engine's serving metrics.
  obs::MetricsRegistry metrics_registry;
  serve::ModelRegistry registry(&metrics_registry);
  serve::ModelRegistry::Options serve_options;
  serve_options.backend = backend;
  if (Status s = registry.Adopt("cli", dataset, config, model, serve_options);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const serve::BackendReport& report = registry.Get("cli")->backend_report();
  std::printf("backend: requested %s, serving %s", report.requested.c_str(),
              report.active.c_str());
  if (report.calibration_size > 0) {
    std::printf(" (guardrail: %d/%d argmax disagreements, max |logit diff| "
                "%.4g%s)",
                report.argmax_disagreements, report.calibration_size,
                report.max_abs_logit_diff,
                report.fell_back ? "; FELL BACK to fp32" : "");
  }
  std::printf("\n");

  // --replicas > 1 serves through a ServeCluster (continuous batching, no
  // wait window — --wait_us only applies to the single-engine batcher).
  std::unique_ptr<serve::InferenceEngine> engine;
  std::unique_ptr<serve::ServeCluster> cluster;
  if (replicas > 1) {
    serve::ServeCluster::Options options;
    options.num_replicas = static_cast<size_t>(replicas);
    options.replica.max_batch = batch;
    options.replica.queue_capacity = static_cast<size_t>(requests) + 16;
    options.cache_capacity = static_cast<size_t>(cache);
    options.metrics_registry = &metrics_registry;
    cluster =
        std::make_unique<serve::ServeCluster>(registry.Get("cli"), options);
  } else {
    serve::InferenceEngine::Options options;
    options.batcher.max_batch = batch;
    options.batcher.max_wait_us = wait_us;
    options.batcher.queue_capacity = static_cast<size_t>(requests) + 16;
    options.cache_capacity = static_cast<size_t>(cache);
    options.metrics_registry = &metrics_registry;
    engine =
        std::make_unique<serve::InferenceEngine>(registry.Get("cli"), options);
  }
  const serve::ServeMetrics& metrics =
      cluster ? cluster->metrics() : engine->metrics();

  // Tracing covers only the serving phase (training spans would dwarf the
  // per-request ones and blow the event cap on long runs).
  if (!trace_out.empty()) obs::Tracer::Global().Enable();

  // The request stream cycles over the dataset, so the prediction cache
  // warms up after the first pass over the distinct graphs.
  Stopwatch timer;
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const graph::Graph& g = dataset.graph(i % dataset.size());
    futures.push_back(cluster ? cluster->Submit(g) : engine->Submit(g));
  }
  int errors = 0;
  for (auto& f : futures) {
    if (!f.get().ok()) ++errors;
  }
  const double elapsed = timer.ElapsedSeconds();

  if (!trace_out.empty()) {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Disable();
    std::ofstream os(trace_out);
    if (!os) {
      std::fprintf(stderr, "serve-bench: cannot open %s\n", trace_out.c_str());
      return 1;
    }
    tracer.WriteChromeTrace(os);
    std::printf("wrote %zu trace events to %s\n", tracer.NumEvents(),
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    if (!os) {
      std::fprintf(stderr, "serve-bench: cannot open %s\n",
                   metrics_out.c_str());
      return 1;
    }
    metrics.registry().WritePrometheusText(os);
    std::printf("wrote Prometheus metrics to %s\n", metrics_out.c_str());
  }

  std::printf("served %d requests in %.3f s (%.1f graphs/sec, %d errors)\n\n",
              requests, elapsed, requests / elapsed, errors);
  metrics.Print(std::cout);
  if (cluster != nullptr) {
    const serve::ClusterMetrics& cm = cluster->cluster_metrics();
    std::printf("cluster: %d replicas, %zu dispatched, %zu steals "
                "(%zu requests), %zu continuous admits\n",
                replicas, cm.dispatched(), cm.steals(), cm.stolen_requests(),
                cm.continuous_admits());
  }
  return errors == 0 ? 0 : 1;
}

int RunGenerate(const CliArgs& args) {
  if (!args.Has("synthetic") || !args.Has("out_dir")) return Usage();
  auto ds = LoadDataset(args);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::filesystem::create_directories(args.Get("out_dir"));
  Status status = graph::WriteTuDataset(ds.value(), args.Get("out_dir"));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d graphs to %s/%s_*.txt\n", ds.value().size(),
              args.Get("out_dir").c_str(), ds.value().name().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  CliArgs args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) return Usage();
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) {
      args.flags[arg + 2] = "1";  // boolean flag
    } else {
      args.flags[std::string(arg + 2, eq)] = eq + 1;
    }
  }
  if (args.command == "stats") return RunStats(args);
  if (args.command == "evaluate") return RunEvaluate(args);
  if (args.command == "generate") return RunGenerate(args);
  if (args.command == "serve-bench") return RunServeBench(args);
  return Usage();
}
