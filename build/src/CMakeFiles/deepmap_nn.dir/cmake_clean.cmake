file(REMOVE_RECURSE
  "CMakeFiles/deepmap_nn.dir/nn/activations.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/activations.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/conv1d.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/conv1d.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/dense.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/dense.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/dropout.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/dropout.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/gemm.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/gemm.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/gradient_check.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/gradient_check.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/graph_conv.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/graph_conv.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/layer.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/layer.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/model.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/model.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/pooling.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/pooling.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/serialization.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/serialization.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/softmax_xent.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/softmax_xent.cc.o.d"
  "CMakeFiles/deepmap_nn.dir/nn/tensor.cc.o"
  "CMakeFiles/deepmap_nn.dir/nn/tensor.cc.o.d"
  "libdeepmap_nn.a"
  "libdeepmap_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
