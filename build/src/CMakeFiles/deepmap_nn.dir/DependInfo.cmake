
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/CMakeFiles/deepmap_nn.dir/nn/activations.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/activations.cc.o.d"
  "/root/repo/src/nn/conv1d.cc" "src/CMakeFiles/deepmap_nn.dir/nn/conv1d.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/conv1d.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/CMakeFiles/deepmap_nn.dir/nn/dense.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/dense.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/deepmap_nn.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/gemm.cc" "src/CMakeFiles/deepmap_nn.dir/nn/gemm.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/gemm.cc.o.d"
  "/root/repo/src/nn/gradient_check.cc" "src/CMakeFiles/deepmap_nn.dir/nn/gradient_check.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/gradient_check.cc.o.d"
  "/root/repo/src/nn/graph_conv.cc" "src/CMakeFiles/deepmap_nn.dir/nn/graph_conv.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/graph_conv.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/CMakeFiles/deepmap_nn.dir/nn/layer.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/layer.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/CMakeFiles/deepmap_nn.dir/nn/model.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/model.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/deepmap_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/CMakeFiles/deepmap_nn.dir/nn/pooling.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/pooling.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/CMakeFiles/deepmap_nn.dir/nn/serialization.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/serialization.cc.o.d"
  "/root/repo/src/nn/softmax_xent.cc" "src/CMakeFiles/deepmap_nn.dir/nn/softmax_xent.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/softmax_xent.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/deepmap_nn.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/deepmap_nn.dir/nn/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/deepmap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/deepmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
