# Empty dependencies file for gemm_pipeline.
# This may be replaced when dependencies are built.
