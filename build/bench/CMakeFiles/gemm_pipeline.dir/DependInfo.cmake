
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/gemm_pipeline.cpp" "bench/CMakeFiles/gemm_pipeline.dir/gemm_pipeline.cpp.o" "gcc" "bench/CMakeFiles/gemm_pipeline.dir/gemm_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/deepmap_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/deepmap_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/deepmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/deepmap_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/deepmap_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/deepmap_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/deepmap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/deepmap_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/deepmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
