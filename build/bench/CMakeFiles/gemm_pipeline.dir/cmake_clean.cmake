file(REMOVE_RECURSE
  "CMakeFiles/gemm_pipeline.dir/gemm_pipeline.cpp.o"
  "CMakeFiles/gemm_pipeline.dir/gemm_pipeline.cpp.o.d"
  "gemm_pipeline"
  "gemm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
