# Empty dependencies file for fig5_sensitivity.
# This may be replaced when dependencies are built.
