file(REMOVE_RECURSE
  "CMakeFiles/fig5_sensitivity.dir/fig5_sensitivity.cpp.o"
  "CMakeFiles/fig5_sensitivity.dir/fig5_sensitivity.cpp.o.d"
  "fig5_sensitivity"
  "fig5_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
