# Empty compiler generated dependencies file for extension_kernels.
# This may be replaced when dependencies are built.
