file(REMOVE_RECURSE
  "CMakeFiles/extension_kernels.dir/extension_kernels.cpp.o"
  "CMakeFiles/extension_kernels.dir/extension_kernels.cpp.o.d"
  "extension_kernels"
  "extension_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
