# Empty dependencies file for extension_kernels.
# This may be replaced when dependencies are built.
