file(REMOVE_RECURSE
  "CMakeFiles/table2_kernels_vs_deepmap.dir/table2_kernels_vs_deepmap.cpp.o"
  "CMakeFiles/table2_kernels_vs_deepmap.dir/table2_kernels_vs_deepmap.cpp.o.d"
  "table2_kernels_vs_deepmap"
  "table2_kernels_vs_deepmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kernels_vs_deepmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
