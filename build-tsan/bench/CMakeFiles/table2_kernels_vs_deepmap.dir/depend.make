# Empty dependencies file for table2_kernels_vs_deepmap.
# This may be replaced when dependencies are built.
