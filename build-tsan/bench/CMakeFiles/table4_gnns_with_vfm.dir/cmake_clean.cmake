file(REMOVE_RECURSE
  "CMakeFiles/table4_gnns_with_vfm.dir/table4_gnns_with_vfm.cpp.o"
  "CMakeFiles/table4_gnns_with_vfm.dir/table4_gnns_with_vfm.cpp.o.d"
  "table4_gnns_with_vfm"
  "table4_gnns_with_vfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_gnns_with_vfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
