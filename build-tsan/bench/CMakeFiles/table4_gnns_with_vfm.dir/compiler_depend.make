# Empty compiler generated dependencies file for table4_gnns_with_vfm.
# This may be replaced when dependencies are built.
