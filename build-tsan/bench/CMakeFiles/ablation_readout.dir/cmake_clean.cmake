file(REMOVE_RECURSE
  "CMakeFiles/ablation_readout.dir/ablation_readout.cpp.o"
  "CMakeFiles/ablation_readout.dir/ablation_readout.cpp.o.d"
  "ablation_readout"
  "ablation_readout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_readout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
