# Empty dependencies file for ablation_readout.
# This may be replaced when dependencies are built.
