file(REMOVE_RECURSE
  "CMakeFiles/fig7_baseline_power.dir/fig7_baseline_power.cpp.o"
  "CMakeFiles/fig7_baseline_power.dir/fig7_baseline_power.cpp.o.d"
  "fig7_baseline_power"
  "fig7_baseline_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_baseline_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
