# Empty compiler generated dependencies file for fig7_baseline_power.
# This may be replaced when dependencies are built.
