file(REMOVE_RECURSE
  "CMakeFiles/extension_gnns.dir/extension_gnns.cpp.o"
  "CMakeFiles/extension_gnns.dir/extension_gnns.cpp.o.d"
  "extension_gnns"
  "extension_gnns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_gnns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
