# Empty dependencies file for extension_gnns.
# This may be replaced when dependencies are built.
