# Empty compiler generated dependencies file for table3_all_baselines.
# This may be replaced when dependencies are built.
