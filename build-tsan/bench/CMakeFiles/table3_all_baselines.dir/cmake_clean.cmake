file(REMOVE_RECURSE
  "CMakeFiles/table3_all_baselines.dir/table3_all_baselines.cpp.o"
  "CMakeFiles/table3_all_baselines.dir/table3_all_baselines.cpp.o.d"
  "table3_all_baselines"
  "table3_all_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_all_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
