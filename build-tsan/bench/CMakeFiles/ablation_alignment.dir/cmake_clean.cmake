file(REMOVE_RECURSE
  "CMakeFiles/ablation_alignment.dir/ablation_alignment.cpp.o"
  "CMakeFiles/ablation_alignment.dir/ablation_alignment.cpp.o.d"
  "ablation_alignment"
  "ablation_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
