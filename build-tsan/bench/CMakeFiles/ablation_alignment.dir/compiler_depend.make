# Empty compiler generated dependencies file for ablation_alignment.
# This may be replaced when dependencies are built.
