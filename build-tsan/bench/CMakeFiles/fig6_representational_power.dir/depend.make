# Empty dependencies file for fig6_representational_power.
# This may be replaced when dependencies are built.
