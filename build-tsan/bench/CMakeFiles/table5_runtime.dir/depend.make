# Empty dependencies file for table5_runtime.
# This may be replaced when dependencies are built.
