file(REMOVE_RECURSE
  "CMakeFiles/table5_runtime.dir/table5_runtime.cpp.o"
  "CMakeFiles/table5_runtime.dir/table5_runtime.cpp.o.d"
  "table5_runtime"
  "table5_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
