# Empty dependencies file for gcn_gat_test.
# This may be replaced when dependencies are built.
