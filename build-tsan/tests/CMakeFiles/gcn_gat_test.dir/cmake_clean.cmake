file(REMOVE_RECURSE
  "CMakeFiles/gcn_gat_test.dir/gcn_gat_test.cc.o"
  "CMakeFiles/gcn_gat_test.dir/gcn_gat_test.cc.o.d"
  "gcn_gat_test"
  "gcn_gat_test.pdb"
  "gcn_gat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcn_gat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
