file(REMOVE_RECURSE
  "CMakeFiles/deepmap_test.dir/deepmap_test.cc.o"
  "CMakeFiles/deepmap_test.dir/deepmap_test.cc.o.d"
  "deepmap_test"
  "deepmap_test.pdb"
  "deepmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
