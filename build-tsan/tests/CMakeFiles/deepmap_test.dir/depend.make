# Empty dependencies file for deepmap_test.
# This may be replaced when dependencies are built.
