file(REMOVE_RECURSE
  "CMakeFiles/vertex_classification_test.dir/vertex_classification_test.cc.o"
  "CMakeFiles/vertex_classification_test.dir/vertex_classification_test.cc.o.d"
  "vertex_classification_test"
  "vertex_classification_test.pdb"
  "vertex_classification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_classification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
