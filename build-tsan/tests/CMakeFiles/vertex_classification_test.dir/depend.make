# Empty dependencies file for vertex_classification_test.
# This may be replaced when dependencies are built.
