file(REMOVE_RECURSE
  "CMakeFiles/graphlet_test.dir/graphlet_test.cc.o"
  "CMakeFiles/graphlet_test.dir/graphlet_test.cc.o.d"
  "graphlet_test"
  "graphlet_test.pdb"
  "graphlet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphlet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
