# Empty compiler generated dependencies file for graphlet_test.
# This may be replaced when dependencies are built.
