file(REMOVE_RECURSE
  "CMakeFiles/treepp_test.dir/treepp_test.cc.o"
  "CMakeFiles/treepp_test.dir/treepp_test.cc.o.d"
  "treepp_test"
  "treepp_test.pdb"
  "treepp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treepp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
