# Empty compiler generated dependencies file for treepp_test.
# This may be replaced when dependencies are built.
