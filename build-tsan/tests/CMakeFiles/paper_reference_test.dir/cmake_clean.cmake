file(REMOVE_RECURSE
  "CMakeFiles/paper_reference_test.dir/paper_reference_test.cc.o"
  "CMakeFiles/paper_reference_test.dir/paper_reference_test.cc.o.d"
  "paper_reference_test"
  "paper_reference_test.pdb"
  "paper_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
