# Empty compiler generated dependencies file for paper_reference_test.
# This may be replaced when dependencies are built.
