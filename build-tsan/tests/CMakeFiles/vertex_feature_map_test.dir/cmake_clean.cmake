file(REMOVE_RECURSE
  "CMakeFiles/vertex_feature_map_test.dir/vertex_feature_map_test.cc.o"
  "CMakeFiles/vertex_feature_map_test.dir/vertex_feature_map_test.cc.o.d"
  "vertex_feature_map_test"
  "vertex_feature_map_test.pdb"
  "vertex_feature_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_feature_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
