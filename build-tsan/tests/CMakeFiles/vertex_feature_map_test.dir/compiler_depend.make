# Empty compiler generated dependencies file for vertex_feature_map_test.
# This may be replaced when dependencies are built.
