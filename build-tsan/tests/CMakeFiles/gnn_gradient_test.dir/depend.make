# Empty dependencies file for gnn_gradient_test.
# This may be replaced when dependencies are built.
