file(REMOVE_RECURSE
  "CMakeFiles/gnn_gradient_test.dir/gnn_gradient_test.cc.o"
  "CMakeFiles/gnn_gradient_test.dir/gnn_gradient_test.cc.o.d"
  "gnn_gradient_test"
  "gnn_gradient_test.pdb"
  "gnn_gradient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_gradient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
