# Empty compiler generated dependencies file for tu_format_test.
# This may be replaced when dependencies are built.
