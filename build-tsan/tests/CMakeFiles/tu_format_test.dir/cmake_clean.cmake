file(REMOVE_RECURSE
  "CMakeFiles/tu_format_test.dir/tu_format_test.cc.o"
  "CMakeFiles/tu_format_test.dir/tu_format_test.cc.o.d"
  "tu_format_test"
  "tu_format_test.pdb"
  "tu_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tu_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
