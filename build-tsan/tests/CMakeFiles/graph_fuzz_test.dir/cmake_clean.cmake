file(REMOVE_RECURSE
  "CMakeFiles/graph_fuzz_test.dir/graph_fuzz_test.cc.o"
  "CMakeFiles/graph_fuzz_test.dir/graph_fuzz_test.cc.o.d"
  "graph_fuzz_test"
  "graph_fuzz_test.pdb"
  "graph_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
