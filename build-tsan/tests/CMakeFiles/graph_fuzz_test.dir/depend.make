# Empty dependencies file for graph_fuzz_test.
# This may be replaced when dependencies are built.
