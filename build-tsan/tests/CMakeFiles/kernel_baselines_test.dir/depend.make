# Empty dependencies file for kernel_baselines_test.
# This may be replaced when dependencies are built.
