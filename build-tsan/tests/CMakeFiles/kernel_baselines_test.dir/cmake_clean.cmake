file(REMOVE_RECURSE
  "CMakeFiles/kernel_baselines_test.dir/kernel_baselines_test.cc.o"
  "CMakeFiles/kernel_baselines_test.dir/kernel_baselines_test.cc.o.d"
  "kernel_baselines_test"
  "kernel_baselines_test.pdb"
  "kernel_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
