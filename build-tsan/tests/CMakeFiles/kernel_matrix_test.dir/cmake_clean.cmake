file(REMOVE_RECURSE
  "CMakeFiles/kernel_matrix_test.dir/kernel_matrix_test.cc.o"
  "CMakeFiles/kernel_matrix_test.dir/kernel_matrix_test.cc.o.d"
  "kernel_matrix_test"
  "kernel_matrix_test.pdb"
  "kernel_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
