# Empty compiler generated dependencies file for feature_map_test.
# This may be replaced when dependencies are built.
