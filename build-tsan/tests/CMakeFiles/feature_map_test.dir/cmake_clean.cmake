file(REMOVE_RECURSE
  "CMakeFiles/feature_map_test.dir/feature_map_test.cc.o"
  "CMakeFiles/feature_map_test.dir/feature_map_test.cc.o.d"
  "feature_map_test"
  "feature_map_test.pdb"
  "feature_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
