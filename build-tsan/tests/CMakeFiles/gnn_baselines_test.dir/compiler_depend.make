# Empty compiler generated dependencies file for gnn_baselines_test.
# This may be replaced when dependencies are built.
