file(REMOVE_RECURSE
  "CMakeFiles/gnn_baselines_test.dir/gnn_baselines_test.cc.o"
  "CMakeFiles/gnn_baselines_test.dir/gnn_baselines_test.cc.o.d"
  "gnn_baselines_test"
  "gnn_baselines_test.pdb"
  "gnn_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
