# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_molecule_screening "/root/repo/build-tsan/examples/molecule_screening")
set_tests_properties(example_molecule_screening PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_networks "/root/repo/build-tsan/examples/social_networks")
set_tests_properties(example_social_networks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vertex_embeddings "/root/repo/build-tsan/examples/vertex_embeddings")
set_tests_properties(example_vertex_embeddings PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_persistence "/root/repo/build-tsan/examples/model_persistence")
set_tests_properties(example_model_persistence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_brain_region_roles "/root/repo/build-tsan/examples/brain_region_roles")
set_tests_properties(example_brain_region_roles PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_serve_molecules "/root/repo/build-tsan/examples/serve_molecules")
set_tests_properties(example_serve_molecules PROPERTIES  LABELS "serve" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
