# Empty compiler generated dependencies file for social_networks.
# This may be replaced when dependencies are built.
