file(REMOVE_RECURSE
  "CMakeFiles/social_networks.dir/social_networks.cpp.o"
  "CMakeFiles/social_networks.dir/social_networks.cpp.o.d"
  "social_networks"
  "social_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
