# Empty dependencies file for model_persistence.
# This may be replaced when dependencies are built.
