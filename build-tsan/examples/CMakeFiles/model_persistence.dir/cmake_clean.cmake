file(REMOVE_RECURSE
  "CMakeFiles/model_persistence.dir/model_persistence.cpp.o"
  "CMakeFiles/model_persistence.dir/model_persistence.cpp.o.d"
  "model_persistence"
  "model_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
