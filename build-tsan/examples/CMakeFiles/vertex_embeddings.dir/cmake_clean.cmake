file(REMOVE_RECURSE
  "CMakeFiles/vertex_embeddings.dir/vertex_embeddings.cpp.o"
  "CMakeFiles/vertex_embeddings.dir/vertex_embeddings.cpp.o.d"
  "vertex_embeddings"
  "vertex_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
