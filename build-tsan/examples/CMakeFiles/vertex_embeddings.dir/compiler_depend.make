# Empty compiler generated dependencies file for vertex_embeddings.
# This may be replaced when dependencies are built.
