# Empty compiler generated dependencies file for serve_molecules.
# This may be replaced when dependencies are built.
