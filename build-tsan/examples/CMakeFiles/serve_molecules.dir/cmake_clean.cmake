file(REMOVE_RECURSE
  "CMakeFiles/serve_molecules.dir/serve_molecules.cpp.o"
  "CMakeFiles/serve_molecules.dir/serve_molecules.cpp.o.d"
  "serve_molecules"
  "serve_molecules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_molecules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
