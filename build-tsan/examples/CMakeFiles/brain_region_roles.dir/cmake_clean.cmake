file(REMOVE_RECURSE
  "CMakeFiles/brain_region_roles.dir/brain_region_roles.cpp.o"
  "CMakeFiles/brain_region_roles.dir/brain_region_roles.cpp.o.d"
  "brain_region_roles"
  "brain_region_roles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brain_region_roles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
