# Empty compiler generated dependencies file for brain_region_roles.
# This may be replaced when dependencies are built.
