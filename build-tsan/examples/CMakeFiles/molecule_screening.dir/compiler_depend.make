# Empty compiler generated dependencies file for molecule_screening.
# This may be replaced when dependencies are built.
