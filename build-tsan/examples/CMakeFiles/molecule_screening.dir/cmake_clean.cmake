file(REMOVE_RECURSE
  "CMakeFiles/molecule_screening.dir/molecule_screening.cpp.o"
  "CMakeFiles/molecule_screening.dir/molecule_screening.cpp.o.d"
  "molecule_screening"
  "molecule_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
