file(REMOVE_RECURSE
  "CMakeFiles/deepmap_cli.dir/deepmap_cli.cpp.o"
  "CMakeFiles/deepmap_cli.dir/deepmap_cli.cpp.o.d"
  "deepmap_cli"
  "deepmap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
