# Empty dependencies file for deepmap_cli.
# This may be replaced when dependencies are built.
