# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_stats "/root/repo/build-tsan/tools/deepmap_cli" "stats" "--synthetic=PTC_MM")
set_tests_properties(cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_evaluate_kernel "/root/repo/build-tsan/tools/deepmap_cli" "evaluate" "--method=treepp" "--synthetic=PTC_MM" "--folds=2" "--min_graphs=24")
set_tests_properties(cli_evaluate_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_serve_bench "/root/repo/build-tsan/tools/deepmap_cli" "serve-bench" "--synthetic=PTC_MM" "--min_graphs=24" "--epochs=2" "--requests=64" "--batch=8")
set_tests_properties(cli_serve_bench PROPERTIES  LABELS "serve" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build-tsan/tools/deepmap_cli" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
