# Empty compiler generated dependencies file for deepmap_harness.
# This may be replaced when dependencies are built.
