file(REMOVE_RECURSE
  "CMakeFiles/deepmap_harness.dir/eval/experiment.cc.o"
  "CMakeFiles/deepmap_harness.dir/eval/experiment.cc.o.d"
  "libdeepmap_harness.a"
  "libdeepmap_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
