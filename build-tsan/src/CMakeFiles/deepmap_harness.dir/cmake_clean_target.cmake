file(REMOVE_RECURSE
  "libdeepmap_harness.a"
)
