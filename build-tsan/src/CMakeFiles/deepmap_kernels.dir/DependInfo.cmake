
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/feature_map.cc" "src/CMakeFiles/deepmap_kernels.dir/kernels/feature_map.cc.o" "gcc" "src/CMakeFiles/deepmap_kernels.dir/kernels/feature_map.cc.o.d"
  "/root/repo/src/kernels/graphlet.cc" "src/CMakeFiles/deepmap_kernels.dir/kernels/graphlet.cc.o" "gcc" "src/CMakeFiles/deepmap_kernels.dir/kernels/graphlet.cc.o.d"
  "/root/repo/src/kernels/kernel_matrix.cc" "src/CMakeFiles/deepmap_kernels.dir/kernels/kernel_matrix.cc.o" "gcc" "src/CMakeFiles/deepmap_kernels.dir/kernels/kernel_matrix.cc.o.d"
  "/root/repo/src/kernels/random_walk.cc" "src/CMakeFiles/deepmap_kernels.dir/kernels/random_walk.cc.o" "gcc" "src/CMakeFiles/deepmap_kernels.dir/kernels/random_walk.cc.o.d"
  "/root/repo/src/kernels/shortest_path.cc" "src/CMakeFiles/deepmap_kernels.dir/kernels/shortest_path.cc.o" "gcc" "src/CMakeFiles/deepmap_kernels.dir/kernels/shortest_path.cc.o.d"
  "/root/repo/src/kernels/treepp.cc" "src/CMakeFiles/deepmap_kernels.dir/kernels/treepp.cc.o" "gcc" "src/CMakeFiles/deepmap_kernels.dir/kernels/treepp.cc.o.d"
  "/root/repo/src/kernels/vertex_feature_map.cc" "src/CMakeFiles/deepmap_kernels.dir/kernels/vertex_feature_map.cc.o" "gcc" "src/CMakeFiles/deepmap_kernels.dir/kernels/vertex_feature_map.cc.o.d"
  "/root/repo/src/kernels/wl.cc" "src/CMakeFiles/deepmap_kernels.dir/kernels/wl.cc.o" "gcc" "src/CMakeFiles/deepmap_kernels.dir/kernels/wl.cc.o.d"
  "/root/repo/src/kernels/wl_oa.cc" "src/CMakeFiles/deepmap_kernels.dir/kernels/wl_oa.cc.o" "gcc" "src/CMakeFiles/deepmap_kernels.dir/kernels/wl_oa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
