# Empty dependencies file for deepmap_kernels.
# This may be replaced when dependencies are built.
