file(REMOVE_RECURSE
  "libdeepmap_kernels.a"
)
