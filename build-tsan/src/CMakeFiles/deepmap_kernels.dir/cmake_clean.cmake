file(REMOVE_RECURSE
  "CMakeFiles/deepmap_kernels.dir/kernels/feature_map.cc.o"
  "CMakeFiles/deepmap_kernels.dir/kernels/feature_map.cc.o.d"
  "CMakeFiles/deepmap_kernels.dir/kernels/graphlet.cc.o"
  "CMakeFiles/deepmap_kernels.dir/kernels/graphlet.cc.o.d"
  "CMakeFiles/deepmap_kernels.dir/kernels/kernel_matrix.cc.o"
  "CMakeFiles/deepmap_kernels.dir/kernels/kernel_matrix.cc.o.d"
  "CMakeFiles/deepmap_kernels.dir/kernels/random_walk.cc.o"
  "CMakeFiles/deepmap_kernels.dir/kernels/random_walk.cc.o.d"
  "CMakeFiles/deepmap_kernels.dir/kernels/shortest_path.cc.o"
  "CMakeFiles/deepmap_kernels.dir/kernels/shortest_path.cc.o.d"
  "CMakeFiles/deepmap_kernels.dir/kernels/treepp.cc.o"
  "CMakeFiles/deepmap_kernels.dir/kernels/treepp.cc.o.d"
  "CMakeFiles/deepmap_kernels.dir/kernels/vertex_feature_map.cc.o"
  "CMakeFiles/deepmap_kernels.dir/kernels/vertex_feature_map.cc.o.d"
  "CMakeFiles/deepmap_kernels.dir/kernels/wl.cc.o"
  "CMakeFiles/deepmap_kernels.dir/kernels/wl.cc.o.d"
  "CMakeFiles/deepmap_kernels.dir/kernels/wl_oa.cc.o"
  "CMakeFiles/deepmap_kernels.dir/kernels/wl_oa.cc.o.d"
  "libdeepmap_kernels.a"
  "libdeepmap_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
