file(REMOVE_RECURSE
  "CMakeFiles/deepmap_graph.dir/graph/algorithms.cc.o"
  "CMakeFiles/deepmap_graph.dir/graph/algorithms.cc.o.d"
  "CMakeFiles/deepmap_graph.dir/graph/centrality.cc.o"
  "CMakeFiles/deepmap_graph.dir/graph/centrality.cc.o.d"
  "CMakeFiles/deepmap_graph.dir/graph/dataset.cc.o"
  "CMakeFiles/deepmap_graph.dir/graph/dataset.cc.o.d"
  "CMakeFiles/deepmap_graph.dir/graph/graph.cc.o"
  "CMakeFiles/deepmap_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/deepmap_graph.dir/graph/isomorphism.cc.o"
  "CMakeFiles/deepmap_graph.dir/graph/isomorphism.cc.o.d"
  "CMakeFiles/deepmap_graph.dir/graph/statistics.cc.o"
  "CMakeFiles/deepmap_graph.dir/graph/statistics.cc.o.d"
  "CMakeFiles/deepmap_graph.dir/graph/tu_format.cc.o"
  "CMakeFiles/deepmap_graph.dir/graph/tu_format.cc.o.d"
  "libdeepmap_graph.a"
  "libdeepmap_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
