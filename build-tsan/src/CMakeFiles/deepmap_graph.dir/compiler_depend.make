# Empty compiler generated dependencies file for deepmap_graph.
# This may be replaced when dependencies are built.
