
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/deepmap_graph.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/deepmap_graph.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/centrality.cc" "src/CMakeFiles/deepmap_graph.dir/graph/centrality.cc.o" "gcc" "src/CMakeFiles/deepmap_graph.dir/graph/centrality.cc.o.d"
  "/root/repo/src/graph/dataset.cc" "src/CMakeFiles/deepmap_graph.dir/graph/dataset.cc.o" "gcc" "src/CMakeFiles/deepmap_graph.dir/graph/dataset.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/deepmap_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/deepmap_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/isomorphism.cc" "src/CMakeFiles/deepmap_graph.dir/graph/isomorphism.cc.o" "gcc" "src/CMakeFiles/deepmap_graph.dir/graph/isomorphism.cc.o.d"
  "/root/repo/src/graph/statistics.cc" "src/CMakeFiles/deepmap_graph.dir/graph/statistics.cc.o" "gcc" "src/CMakeFiles/deepmap_graph.dir/graph/statistics.cc.o.d"
  "/root/repo/src/graph/tu_format.cc" "src/CMakeFiles/deepmap_graph.dir/graph/tu_format.cc.o" "gcc" "src/CMakeFiles/deepmap_graph.dir/graph/tu_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
