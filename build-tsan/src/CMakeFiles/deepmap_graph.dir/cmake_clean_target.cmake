file(REMOVE_RECURSE
  "libdeepmap_graph.a"
)
