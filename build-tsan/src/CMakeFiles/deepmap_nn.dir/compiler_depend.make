# Empty compiler generated dependencies file for deepmap_nn.
# This may be replaced when dependencies are built.
