file(REMOVE_RECURSE
  "libdeepmap_nn.a"
)
