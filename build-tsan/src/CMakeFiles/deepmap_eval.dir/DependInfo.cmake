
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/cross_validation.cc" "src/CMakeFiles/deepmap_eval.dir/eval/cross_validation.cc.o" "gcc" "src/CMakeFiles/deepmap_eval.dir/eval/cross_validation.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/deepmap_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/deepmap_eval.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/paper_reference.cc" "src/CMakeFiles/deepmap_eval.dir/eval/paper_reference.cc.o" "gcc" "src/CMakeFiles/deepmap_eval.dir/eval/paper_reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
