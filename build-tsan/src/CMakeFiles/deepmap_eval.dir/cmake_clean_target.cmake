file(REMOVE_RECURSE
  "libdeepmap_eval.a"
)
