file(REMOVE_RECURSE
  "CMakeFiles/deepmap_eval.dir/eval/cross_validation.cc.o"
  "CMakeFiles/deepmap_eval.dir/eval/cross_validation.cc.o.d"
  "CMakeFiles/deepmap_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/deepmap_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/deepmap_eval.dir/eval/paper_reference.cc.o"
  "CMakeFiles/deepmap_eval.dir/eval/paper_reference.cc.o.d"
  "libdeepmap_eval.a"
  "libdeepmap_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
