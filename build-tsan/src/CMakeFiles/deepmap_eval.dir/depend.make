# Empty dependencies file for deepmap_eval.
# This may be replaced when dependencies are built.
