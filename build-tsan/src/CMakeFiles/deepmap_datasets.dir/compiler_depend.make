# Empty compiler generated dependencies file for deepmap_datasets.
# This may be replaced when dependencies are built.
