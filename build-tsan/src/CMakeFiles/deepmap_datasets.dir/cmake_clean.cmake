file(REMOVE_RECURSE
  "CMakeFiles/deepmap_datasets.dir/datasets/random_graphs.cc.o"
  "CMakeFiles/deepmap_datasets.dir/datasets/random_graphs.cc.o.d"
  "CMakeFiles/deepmap_datasets.dir/datasets/registry.cc.o"
  "CMakeFiles/deepmap_datasets.dir/datasets/registry.cc.o.d"
  "CMakeFiles/deepmap_datasets.dir/datasets/synthetic.cc.o"
  "CMakeFiles/deepmap_datasets.dir/datasets/synthetic.cc.o.d"
  "libdeepmap_datasets.a"
  "libdeepmap_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
