
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/random_graphs.cc" "src/CMakeFiles/deepmap_datasets.dir/datasets/random_graphs.cc.o" "gcc" "src/CMakeFiles/deepmap_datasets.dir/datasets/random_graphs.cc.o.d"
  "/root/repo/src/datasets/registry.cc" "src/CMakeFiles/deepmap_datasets.dir/datasets/registry.cc.o" "gcc" "src/CMakeFiles/deepmap_datasets.dir/datasets/registry.cc.o.d"
  "/root/repo/src/datasets/synthetic.cc" "src/CMakeFiles/deepmap_datasets.dir/datasets/synthetic.cc.o" "gcc" "src/CMakeFiles/deepmap_datasets.dir/datasets/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
