file(REMOVE_RECURSE
  "libdeepmap_datasets.a"
)
