file(REMOVE_RECURSE
  "CMakeFiles/deepmap_core.dir/core/alignment.cc.o"
  "CMakeFiles/deepmap_core.dir/core/alignment.cc.o.d"
  "CMakeFiles/deepmap_core.dir/core/deepmap.cc.o"
  "CMakeFiles/deepmap_core.dir/core/deepmap.cc.o.d"
  "CMakeFiles/deepmap_core.dir/core/receptive_field.cc.o"
  "CMakeFiles/deepmap_core.dir/core/receptive_field.cc.o.d"
  "CMakeFiles/deepmap_core.dir/core/vertex_classification.cc.o"
  "CMakeFiles/deepmap_core.dir/core/vertex_classification.cc.o.d"
  "libdeepmap_core.a"
  "libdeepmap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
