file(REMOVE_RECURSE
  "libdeepmap_core.a"
)
