# Empty compiler generated dependencies file for deepmap_core.
# This may be replaced when dependencies are built.
