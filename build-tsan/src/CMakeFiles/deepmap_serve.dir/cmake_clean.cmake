file(REMOVE_RECURSE
  "CMakeFiles/deepmap_serve.dir/serve/compiled_model.cc.o"
  "CMakeFiles/deepmap_serve.dir/serve/compiled_model.cc.o.d"
  "CMakeFiles/deepmap_serve.dir/serve/engine.cc.o"
  "CMakeFiles/deepmap_serve.dir/serve/engine.cc.o.d"
  "CMakeFiles/deepmap_serve.dir/serve/metrics.cc.o"
  "CMakeFiles/deepmap_serve.dir/serve/metrics.cc.o.d"
  "CMakeFiles/deepmap_serve.dir/serve/micro_batcher.cc.o"
  "CMakeFiles/deepmap_serve.dir/serve/micro_batcher.cc.o.d"
  "CMakeFiles/deepmap_serve.dir/serve/model_registry.cc.o"
  "CMakeFiles/deepmap_serve.dir/serve/model_registry.cc.o.d"
  "CMakeFiles/deepmap_serve.dir/serve/prediction_cache.cc.o"
  "CMakeFiles/deepmap_serve.dir/serve/prediction_cache.cc.o.d"
  "CMakeFiles/deepmap_serve.dir/serve/preprocessor.cc.o"
  "CMakeFiles/deepmap_serve.dir/serve/preprocessor.cc.o.d"
  "libdeepmap_serve.a"
  "libdeepmap_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
