file(REMOVE_RECURSE
  "libdeepmap_serve.a"
)
