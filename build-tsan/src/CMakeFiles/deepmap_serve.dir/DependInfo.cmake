
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/compiled_model.cc" "src/CMakeFiles/deepmap_serve.dir/serve/compiled_model.cc.o" "gcc" "src/CMakeFiles/deepmap_serve.dir/serve/compiled_model.cc.o.d"
  "/root/repo/src/serve/engine.cc" "src/CMakeFiles/deepmap_serve.dir/serve/engine.cc.o" "gcc" "src/CMakeFiles/deepmap_serve.dir/serve/engine.cc.o.d"
  "/root/repo/src/serve/metrics.cc" "src/CMakeFiles/deepmap_serve.dir/serve/metrics.cc.o" "gcc" "src/CMakeFiles/deepmap_serve.dir/serve/metrics.cc.o.d"
  "/root/repo/src/serve/micro_batcher.cc" "src/CMakeFiles/deepmap_serve.dir/serve/micro_batcher.cc.o" "gcc" "src/CMakeFiles/deepmap_serve.dir/serve/micro_batcher.cc.o.d"
  "/root/repo/src/serve/model_registry.cc" "src/CMakeFiles/deepmap_serve.dir/serve/model_registry.cc.o" "gcc" "src/CMakeFiles/deepmap_serve.dir/serve/model_registry.cc.o.d"
  "/root/repo/src/serve/prediction_cache.cc" "src/CMakeFiles/deepmap_serve.dir/serve/prediction_cache.cc.o" "gcc" "src/CMakeFiles/deepmap_serve.dir/serve/prediction_cache.cc.o.d"
  "/root/repo/src/serve/preprocessor.cc" "src/CMakeFiles/deepmap_serve.dir/serve/preprocessor.cc.o" "gcc" "src/CMakeFiles/deepmap_serve.dir/serve/preprocessor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_kernels.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
