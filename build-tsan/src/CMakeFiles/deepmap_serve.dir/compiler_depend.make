# Empty compiler generated dependencies file for deepmap_serve.
# This may be replaced when dependencies are built.
