# Empty compiler generated dependencies file for deepmap_baselines.
# This may be replaced when dependencies are built.
