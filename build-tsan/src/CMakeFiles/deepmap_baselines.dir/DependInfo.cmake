
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dcnn.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/dcnn.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/dcnn.cc.o.d"
  "/root/repo/src/baselines/dgcnn.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/dgcnn.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/dgcnn.cc.o.d"
  "/root/repo/src/baselines/dgk.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/dgk.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/dgk.cc.o.d"
  "/root/repo/src/baselines/gat.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gat.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gat.cc.o.d"
  "/root/repo/src/baselines/gcn.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gcn.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gcn.cc.o.d"
  "/root/repo/src/baselines/gin.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gin.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gin.cc.o.d"
  "/root/repo/src/baselines/gnn_common.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gnn_common.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gnn_common.cc.o.d"
  "/root/repo/src/baselines/gntk.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gntk.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/gntk.cc.o.d"
  "/root/repo/src/baselines/graphsage.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/graphsage.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/graphsage.cc.o.d"
  "/root/repo/src/baselines/kernel_svm.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/kernel_svm.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/kernel_svm.cc.o.d"
  "/root/repo/src/baselines/patchysan.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/patchysan.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/patchysan.cc.o.d"
  "/root/repo/src/baselines/retgk.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/retgk.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/retgk.cc.o.d"
  "/root/repo/src/baselines/svm.cc" "src/CMakeFiles/deepmap_baselines.dir/baselines/svm.cc.o" "gcc" "src/CMakeFiles/deepmap_baselines.dir/baselines/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_eval.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_kernels.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/deepmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
