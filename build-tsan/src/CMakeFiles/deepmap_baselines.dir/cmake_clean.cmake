file(REMOVE_RECURSE
  "CMakeFiles/deepmap_baselines.dir/baselines/dcnn.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/dcnn.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/dgcnn.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/dgcnn.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/dgk.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/dgk.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/gat.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/gat.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/gcn.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/gcn.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/gin.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/gin.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/gnn_common.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/gnn_common.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/gntk.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/gntk.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/graphsage.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/graphsage.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/kernel_svm.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/kernel_svm.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/patchysan.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/patchysan.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/retgk.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/retgk.cc.o.d"
  "CMakeFiles/deepmap_baselines.dir/baselines/svm.cc.o"
  "CMakeFiles/deepmap_baselines.dir/baselines/svm.cc.o.d"
  "libdeepmap_baselines.a"
  "libdeepmap_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
