file(REMOVE_RECURSE
  "libdeepmap_baselines.a"
)
