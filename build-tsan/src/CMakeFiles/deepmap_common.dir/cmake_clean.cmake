file(REMOVE_RECURSE
  "CMakeFiles/deepmap_common.dir/common/logging.cc.o"
  "CMakeFiles/deepmap_common.dir/common/logging.cc.o.d"
  "CMakeFiles/deepmap_common.dir/common/parallel.cc.o"
  "CMakeFiles/deepmap_common.dir/common/parallel.cc.o.d"
  "CMakeFiles/deepmap_common.dir/common/rng.cc.o"
  "CMakeFiles/deepmap_common.dir/common/rng.cc.o.d"
  "CMakeFiles/deepmap_common.dir/common/status.cc.o"
  "CMakeFiles/deepmap_common.dir/common/status.cc.o.d"
  "CMakeFiles/deepmap_common.dir/common/string_util.cc.o"
  "CMakeFiles/deepmap_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/deepmap_common.dir/common/table.cc.o"
  "CMakeFiles/deepmap_common.dir/common/table.cc.o.d"
  "libdeepmap_common.a"
  "libdeepmap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepmap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
