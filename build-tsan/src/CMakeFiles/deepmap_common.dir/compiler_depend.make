# Empty compiler generated dependencies file for deepmap_common.
# This may be replaced when dependencies are built.
