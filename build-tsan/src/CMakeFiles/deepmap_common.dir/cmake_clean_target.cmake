file(REMOVE_RECURSE
  "libdeepmap_common.a"
)
